//! Reproduces **Table 4**: preprocessing overheads in seconds.
//!
//! Ligra/Polymer/GraphMat convert a graph from an edge list into their own
//! formats (here: CSR + CSC construction plus each engine's build); GPOP
//! and Mixen ingest a prebuilt CSR binary, so only their partitioning /
//! filtering cost counts. Mixen's total is split into Filter and Partition,
//! as in the paper.

use mixen_baselines::{BlockEngine, PartitionedEngine, PullEngine, PushEngine};
use mixen_bench::{timed, BenchOpts};
use mixen_core::{MixenEngine, MixenOpts};
use mixen_graph::{EdgeList, Graph};

fn main() {
    let opts = BenchOpts::from_args();
    println!("Table 4: preprocessing overheads (seconds)");
    println!(
        "{:>8}  {:>7} {:>7} {:>8} {:>9}  {:>7} {:>9} {:>7}",
        "graph", "GPOP", "Ligra", "Polymer", "GraphMat", "Filter", "Partition", "Mixen"
    );
    for d in &opts.datasets {
        let g = opts.gen(*d);
        // Edge-list-based frameworks rebuild from raw pairs.
        let pairs: Vec<(u32, u32)> = g.edges().collect();
        let n = g.n();

        let (_, ligra) = timed(|| {
            let converted = Graph::from_edge_list(&EdgeList::from_pairs(n, pairs.clone()));
            let e = PushEngine::new(&converted);
            std::hint::black_box(&e);
            converted
        });
        let (_, polymer) = timed(|| {
            let converted = Graph::from_edge_list(&EdgeList::from_pairs(n, pairs.clone()));
            let e = PartitionedEngine::with_default_partitions(&converted);
            std::hint::black_box(e.partitions());
            converted
        });
        let (_, graphmat) = timed(|| {
            let converted = Graph::from_edge_list(&EdgeList::from_pairs(n, pairs.clone()));
            let e = PullEngine::new(&converted);
            std::hint::black_box(&e);
            converted
        });
        // CSR-binary-based frameworks start from the existing Graph.
        let (gpop_engine, gpop) = timed(|| BlockEngine::with_default_blocks(&g));
        std::hint::black_box(gpop_engine.blocked().nnz());
        let (mixen_engine, _) = timed(|| MixenEngine::new(&g, MixenOpts::default()));
        let filter = mixen_engine.filter_seconds();
        let partition = mixen_engine.partition_seconds();

        println!(
            "{:>8}  {:>7.3} {:>7.3} {:>8.3} {:>9.3}  {:>7.3} {:>9.3} {:>7.3}",
            d.name(),
            gpop,
            ligra,
            polymer,
            graphmat,
            filter,
            partition,
            filter + partition,
        );
    }
    println!(
        "\nNote: edge-list conversion here is in-memory CSR+CSC building; the\n\
         paper's frameworks additionally parse/convert on-disk formats, which\n\
         inflates their absolute numbers. The ordering (conversion >> blocking\n\
         >= filtering+partitioning per edge) is the comparable shape."
    );
}
