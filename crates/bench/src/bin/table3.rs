//! Reproduces **Table 3**: graph-processing time in seconds per iteration
//! (BFS: whole traversal) for {InDegree, PageRank, Collaborative Filtering,
//! BFS} × 8 graphs × 5 frameworks, plus the cross-table speedup summary
//! (the paper: Mixen over GPOP/Ligra/Polymer/GraphMat by
//! 3.42×/7.81×/19.37×/7.74× on average).

use mixen_algos::{
    bfs, collaborative_filtering, default_root, indegree_iterated, pagerank, AnyEngine, CfOpts,
    EngineKind, PageRankOpts,
};
use mixen_bench::{geomean, time_per_iter, timed, BenchOpts};
use mixen_core::Json;
use mixen_graph::Graph;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Algo {
    InDegree,
    PageRank,
    Cf,
    Bfs,
}

impl Algo {
    const ALL: [Algo; 4] = [Algo::InDegree, Algo::PageRank, Algo::Cf, Algo::Bfs];

    fn name(self) -> &'static str {
        match self {
            Algo::InDegree => "InDegree",
            Algo::PageRank => "PageRank",
            Algo::Cf => "Collaborative Filtering",
            Algo::Bfs => "Breadth-First Search",
        }
    }
}

/// Seconds per iteration (BFS: per traversal) of `algo` on `engine`.
fn run(algo: Algo, g: &Graph, engine: &AnyEngine<'_>, iters: usize) -> f64 {
    match algo {
        Algo::InDegree => time_per_iter(iters, |n| {
            std::hint::black_box(indegree_iterated(engine, n));
        }),
        Algo::PageRank => time_per_iter(iters, |n| {
            std::hint::black_box(pagerank(g, engine, PageRankOpts::default(), n));
        }),
        Algo::Cf => time_per_iter(iters, |n| {
            std::hint::black_box(collaborative_filtering(
                g,
                engine,
                CfOpts {
                    blend: 0.5,
                    iters: n,
                },
            ));
        }),
        Algo::Bfs => {
            let root = default_root(g);
            let reps = (iters / 2).max(1);
            time_per_iter(reps, |n| {
                for _ in 0..n {
                    std::hint::black_box(bfs(engine, root));
                }
            })
        }
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let graphs: Vec<(String, Graph)> = opts
        .datasets
        .iter()
        .map(|&d| (d.name().to_string(), opts.gen(d)))
        .collect();

    // speedups[other_kind] collects Mixen_time / other_time per cell.
    let mut ratios: Vec<(EngineKind, Vec<f64>)> = EngineKind::ALL[1..]
        .iter()
        .map(|&k| (k, Vec::new()))
        .collect();

    let mut algos_json: Vec<Json> = Vec::new();
    for algo in Algo::ALL {
        println!("\n=== {} (seconds per iteration) ===", algo.name());
        print!("{:>9}", "Frwk");
        for (name, _) in &graphs {
            print!(" {name:>9}");
        }
        println!();
        let mut table: Vec<(EngineKind, Vec<f64>)> = Vec::new();
        for kind in EngineKind::ALL {
            let mut row = Vec::new();
            for (name, g) in &graphs {
                let (engine, build) = timed(|| AnyEngine::build(kind, g));
                let secs = run(algo, g, &engine, opts.iters);
                eprintln!(
                    "[table3] {} {} {}: {:.4}s/iter (build {:.2}s)",
                    algo.name(),
                    kind.name(),
                    name,
                    secs,
                    build
                );
                row.push(secs);
            }
            table.push((kind, row));
        }
        for (kind, row) in &table {
            print!("{:>9}", kind.name());
            for secs in row {
                print!(" {secs:>9.4}");
            }
            println!();
        }
        // Accumulate Mixen-vs-other ratios for the summary.
        let mixen_row = table[0].1.clone();
        for (kind, row) in &table[1..] {
            let slot = ratios.iter_mut().find(|(k, _)| k == kind).unwrap();
            for (o, m) in row.iter().zip(&mixen_row) {
                if *m > 0.0 {
                    slot.1.push(o / m);
                }
            }
        }
        // One row object per framework: seconds/iteration keyed by graph name.
        algos_json.push(Json::Obj(vec![
            ("algo".into(), Json::Str(algo.name().into())),
            (
                "rows".into(),
                Json::Arr(
                    table
                        .iter()
                        .map(|(kind, row)| {
                            Json::Obj(vec![
                                ("framework".into(), Json::Str(kind.name().into())),
                                (
                                    "seconds_per_iter".into(),
                                    Json::Obj(
                                        graphs
                                            .iter()
                                            .zip(row)
                                            .map(|((name, _), &secs)| {
                                                (name.clone(), Json::from_f64(secs))
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    println!("\n=== Average speedup of Mixen over each framework ===");
    println!("(paper: GPOP 3.42x, Ligra 7.81x, Polymer 19.37x, GraphMat 7.74x)");
    let mut speedups_json: Vec<(String, Json)> = Vec::new();
    for (kind, r) in &ratios {
        let arith = r.iter().sum::<f64>() / r.len().max(1) as f64;
        println!(
            "  vs {:>9}: {:.2}x arithmetic mean, {:.2}x geometric mean over {} cells",
            kind.name(),
            arith,
            geomean(r),
            r.len()
        );
        speedups_json.push((
            kind.name().to_string(),
            Json::Obj(vec![
                ("arithmetic_mean".into(), Json::from_f64(arith)),
                ("geometric_mean".into(), Json::from_f64(geomean(r))),
                ("cells".into(), Json::from_u64(r.len() as u64)),
            ]),
        ));
    }
    opts.write_json_sidecar(
        "table3",
        vec![
            ("algos".into(), Json::Arr(algos_json)),
            ("speedups_vs_mixen".into(), Json::Obj(speedups_json)),
        ],
    );
}
