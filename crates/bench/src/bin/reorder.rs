//! Reordering shoot-out (EXPERIMENTS.md "Reordering shoot-out" protocol).
//!
//! Runs every [`RegularOrdering`] policy over three graph profiles —
//! *urand* (uniform), *rmat* (skewed synthetic) and *wiki* (web-like) by
//! default — and reports, per (graph, policy):
//!
//! * the one-off relabel cost of the pass composition,
//! * simulated L2/LLC miss ratios and DRAM bytes for one steady-state
//!   Main-Phase iteration (the cachesim replays the real blocked
//!   structure, so the differences are structural),
//! * measured PageRank seconds per iteration and the speedup against the
//!   `original` (identity relabel) baseline,
//! * the pinned hub-domain block side the GRASP-style sizing chose,
//!
//! and marks the row the §5 performance model's auto-selector
//! (`PerfModel::preferred_ordering`) would pick. The JSON sidecar
//! (`results/reorder_small.json`) is the committed baseline CI checks for
//! schema drift. Ranks are cross-checked across policies: every relabel
//! must produce the same scores in original ID space (within a float
//! tolerance — summation order changes with the permutation).

use mixen_algos::{pagerank, PageRankOpts};
use mixen_bench::{geomean, time_per_iter, BenchOpts};
use mixen_cachesim::{trace_mixen, CacheConfig};
use mixen_core::{Json, MixenEngine, MixenOpts, PerfModel, RegularOrdering};
use mixen_graph::{Classification, Dataset};

/// Timing rounds per policy; the reported figure is the minimum (same
/// throttle-robustness rationale as the kernels bench).
const ROUNDS: usize = 3;

/// Cross-policy rank agreement tolerance. The permutation changes the
/// float summation order, so bit-for-bit equality only holds *within* a
/// policy (the determinism test pins that); across policies the scores
/// must agree to a small absolute tolerance.
const RANK_TOL: f32 = 1e-4;

fn main() {
    let mut opts = BenchOpts::from_args();
    if opts.datasets.len() == Dataset::ALL.len() {
        // The three profiles of the shoot-out: uniform / skewed / web-like.
        opts.datasets = vec![Dataset::Urand, Dataset::Rmat, Dataset::Wiki];
    }
    let threads = mixen_pool::current_num_threads();
    let cfg = CacheConfig::scaled_paper(opts.divisor());
    println!(
        "Reordering shoot-out: relabel cost, simulated Main-Phase cache \
         behaviour and measured PageRank time per policy ({} iterations, \
         {threads} lanes)",
        opts.iters
    );
    println!(
        "{:>8} {:>12} {:>10} {:>8} {:>8} {:>9} {:>11} {:>8} {:>5}",
        "graph",
        "policy",
        "relabel_s",
        "l2miss",
        "llcmiss",
        "dram_MB",
        "pr_s/iter",
        "speedup",
        "auto"
    );
    let mut graphs_json: Vec<Json> = Vec::new();
    let mut agree = true;
    let mut auto_speedups: Vec<f64> = Vec::new();
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let class = Classification::of(&g);
        let model = PerfModel::from_classification(&g, &class, MixenOpts::default().block_side);
        let auto_pick = model.preferred_ordering();
        // Build one engine per policy up front so the timing loop touches
        // nothing but the iteration itself.
        let engines: Vec<(RegularOrdering, MixenEngine)> = RegularOrdering::ALL
            .into_iter()
            .map(|ordering| {
                let e = MixenEngine::new(
                    &g,
                    MixenOpts {
                        ordering,
                        ..MixenOpts::default()
                    },
                );
                (ordering, e)
            })
            .collect();
        // Interleaved timing: one pass over all policies per round, with
        // the order reversed on odd rounds so host throttle bias cancels.
        let mut secs = vec![f64::INFINITY; engines.len()];
        for (i, (_, e)) in engines.iter().enumerate() {
            // Warm-up.
            std::hint::black_box(pagerank(&g, e, PageRankOpts::default(), 1));
            let _ = i;
        }
        for round in 0..ROUNDS {
            let order: Vec<usize> = if round % 2 == 0 {
                (0..engines.len()).collect()
            } else {
                (0..engines.len()).rev().collect()
            };
            for i in order {
                let e = &engines[i].1;
                let s = time_per_iter(opts.iters, |n| {
                    std::hint::black_box(pagerank(&g, e, PageRankOpts::default(), n));
                });
                secs[i] = secs[i].min(s);
            }
        }
        // Rank agreement: `pagerank` returns scores in original ID space,
        // so every policy must produce (nearly) the same vector.
        let reference = pagerank(&g, &engines[0].1, PageRankOpts::default(), 5);
        let base_secs = secs[0];
        let mut policies_json: Vec<Json> = Vec::new();
        for (i, (ordering, e)) in engines.iter().enumerate() {
            let ranks = pagerank(&g, e, PageRankOpts::default(), 5);
            let max_dev = reference
                .iter()
                .zip(&ranks)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            if max_dev > RANK_TOL {
                agree = false;
                eprintln!(
                    "warning: {}: policy {} deviates from original ranks by {max_dev}",
                    d.name(),
                    ordering.name()
                );
            }
            let report = trace_mixen(e, &cfg);
            let speedup = base_secs / secs[i].max(1e-12);
            let is_auto = *ordering == auto_pick;
            if is_auto {
                auto_speedups.push(speedup);
            }
            println!(
                "{:>8} {:>12} {:>10.6} {:>7.1}% {:>7.1}% {:>9.3} {:>11.6} {:>7.2}x {:>5}",
                d.name(),
                ordering.name(),
                e.filtered().relabel_seconds(),
                report.l2().miss_ratio() * 100.0,
                report.llc().miss_ratio() * 100.0,
                report.dram_bytes() as f64 / 1e6,
                secs[i],
                speedup,
                if is_auto { "*" } else { "" }
            );
            policies_json.push(Json::Obj(vec![
                ("policy".into(), Json::Str(ordering.name().into())),
                (
                    "relabel_seconds".into(),
                    Json::Num(e.filtered().relabel_seconds()),
                ),
                ("l2_miss_ratio".into(), Json::Num(report.l2().miss_ratio())),
                (
                    "llc_miss_ratio".into(),
                    Json::Num(report.llc().miss_ratio()),
                ),
                ("dram_bytes".into(), Json::from_u64(report.dram_bytes())),
                ("pagerank_seconds".into(), Json::Num(secs[i])),
                ("speedup_vs_original".into(), Json::Num(speedup)),
                (
                    "hub_domain_side".into(),
                    Json::from_u64(e.blocked().block_side() as u64),
                ),
                ("auto_pick".into(), Json::Bool(is_auto)),
            ]));
        }
        graphs_json.push(Json::Obj(vec![
            ("graph".into(), Json::Str(d.name().into())),
            ("n".into(), Json::from_u64(g.n() as u64)),
            ("m".into(), Json::from_u64(g.m() as u64)),
            ("alpha".into(), Json::Num(model.alpha)),
            ("beta".into(), Json::Num(model.beta)),
            ("hub_frac".into(), Json::Num(model.hub_frac)),
            ("auto_policy".into(), Json::Str(auto_pick.name().into())),
            ("policies".into(), Json::Arr(policies_json)),
        ]));
    }
    println!(
        "\n(speedup = original seconds / policy seconds for one PageRank\n\
         iteration; '*' marks the policy the §5 model auto-selects from\n\
         (α, β, hub fraction). geomean auto-pick speedup: {:.2}x)",
        geomean(&auto_speedups)
    );
    opts.write_json_sidecar(
        "reorder",
        vec![
            ("threads".into(), Json::from_u64(threads as u64)),
            ("graphs".into(), Json::Arr(graphs_json)),
        ],
    );
    if !agree {
        std::process::exit(1);
    }
}
