//! Ablation study of Mixen's three design choices (the §6.3/§6.4 design
//! space): hub relocation, the Cache step (static bins) and the 2×
//! load-balance split. Each is disabled individually; PageRank
//! per-iteration time and simulated DRAM traffic are reported relative to
//! the full configuration.

use mixen_algos::{pagerank, PageRankOpts};
use mixen_bench::{time_per_iter, BenchOpts};
use mixen_cachesim::{trace_mixen, CacheConfig};
use mixen_core::opts::RegularOrdering;
use mixen_core::{MixenEngine, MixenOpts};

fn variants() -> Vec<(&'static str, MixenOpts)> {
    let full = MixenOpts::default();
    vec![
        ("full", full),
        (
            "-hub_sort",
            MixenOpts {
                ordering: RegularOrdering::Original,
                ..full
            },
        ),
        (
            "+deg_sort",
            MixenOpts {
                ordering: RegularOrdering::ByInDegree,
                ..full
            },
        ),
        (
            "-cache_step",
            MixenOpts {
                cache_step: false,
                ..full
            },
        ),
        (
            "-load_bal",
            MixenOpts {
                load_balance: false,
                ..full
            },
        ),
    ]
}

fn main() {
    let opts = BenchOpts::from_args();
    let cfg = CacheConfig::scaled_paper(opts.divisor());
    println!("Ablation: PageRank time and DRAM traffic, normalized to full Mixen");
    print!("{:>8}", "graph");
    for (name, _) in variants() {
        print!("  {:>11}", format!("t {name}"));
    }
    for (name, _) in variants() {
        print!("  {:>11}", format!("mem {name}"));
    }
    println!();
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let mut times = Vec::new();
        let mut traffic = Vec::new();
        for (_, mopts) in variants() {
            let engine = MixenEngine::new(&g, mopts);
            let secs = time_per_iter(opts.iters, |n| {
                std::hint::black_box(pagerank(&g, &engine, PageRankOpts::default(), n));
            });
            times.push(secs);
            traffic.push(trace_mixen(&engine, &cfg).dram_bytes() as f64);
        }
        let tn = mixen_bench::normalize(&times);
        // Guard the traffic base: a tiny regular subgraph can produce zero
        // steady-state DRAM traffic for the full configuration.
        let base = traffic[0].max(64.0 * 1024.0);
        let mn: Vec<f64> = traffic.iter().map(|&t| t / base).collect();
        print!("{:>8}", d.name());
        for t in &tn {
            print!("  {t:>11.2}");
        }
        for m in &mn {
            print!("  {m:>11.2}");
        }
        println!();
    }
    println!(
        "\nExpected: disabling the Cache step costs most on seed-heavy graphs\n\
         (weibo, track); disabling hub relocation raises traffic on skewed\n\
         graphs; disabling load balancing mainly costs wall-clock time."
    );
}
