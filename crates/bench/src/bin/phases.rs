//! Per-phase breakdown of a Mixen PageRank run, backing the Fig. 4
//! discussion: "on graph weibo the majority of traffic is scheduled out of
//! the main phase". Prints Pre-Phase (seed caching), Main-Phase (split into
//! Scatter+Cache and Gather+Apply) and Post-Phase (sink pull + assembly)
//! times, and the out-of-main fraction per graph.

use mixen_algos::Engine;
use mixen_bench::BenchOpts;
use mixen_core::{Json, MixenEngine, MixenOpts};
use mixen_graph::NodeId;

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "Per-phase wall clock of {} PageRank iterations (seconds)",
        opts.iters
    );
    println!(
        "{:>8}  {:>9} {:>9} {:>9} {:>9}  {:>12}",
        "graph", "pre", "scatter", "gather", "post", "out-of-main"
    );
    let mut graphs_json: Vec<Json> = Vec::new();
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let engine = MixenEngine::new(&g, MixenOpts::default());
        // Inline PageRank kernel so the engine's instrumented driver is used
        // (the Engine trait erases the stats).
        let n = g.n().max(1) as f32;
        let base = 0.15 / n;
        let out_deg: Vec<f32> = (0..g.n() as NodeId)
            .map(|v| g.out_degree(v).max(1) as f32)
            .collect();
        let in_zero: Vec<bool> = (0..g.n() as NodeId).map(|v| g.in_degree(v) == 0).collect();
        let init =
            |v: NodeId| (if in_zero[v as usize] { base } else { 1.0 / n }) / out_deg[v as usize];
        let apply = |v: NodeId, sum: f32| (base + 0.85 * sum) / out_deg[v as usize];
        let (vals, stats) = engine.iterate_with_stats::<f32, _, _>(init, apply, opts.iters);
        // Freeze counters before the sanity re-run below doubles them.
        let counters = engine.metrics().snapshot();
        // Sanity: agree with the trait driver.
        let check = Engine::iterate::<f32, _, _>(&engine, init, apply, opts.iters);
        assert_eq!(vals, check);
        println!(
            "{:>8}  {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {:>11.1}%",
            d.name(),
            stats.pre_seconds,
            stats.scatter_seconds,
            stats.gather_seconds,
            stats.post_seconds,
            stats.out_of_main_fraction() * 100.0
        );
        // Same `phases`/`counters` schema as RunReport::to_json (DESIGN.md §6d).
        graphs_json.push(Json::Obj(vec![
            ("graph".into(), Json::Str(d.name().into())),
            ("n".into(), Json::from_u64(g.n() as u64)),
            ("m".into(), Json::from_u64(g.m() as u64)),
            ("phases".into(), stats.to_json()),
            ("counters".into(), counters.to_json()),
        ]));
    }
    println!(
        "\n(Pre- and Post-Phase run once regardless of iteration count; on\n\
         seed/sink-heavy graphs they carry the traffic the Main-Phase no\n\
         longer has to touch.)"
    );
    opts.write_json_sidecar("phases", vec![("graphs".into(), Json::Arr(graphs_json))]);
}
