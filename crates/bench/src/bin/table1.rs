//! Reproduces **Table 1**: structural characteristics of skewed and
//! non-skewed graphs — `V_hub`, `E_hub` and the regular/seed/sink/isolated
//! percentages.

use mixen_bench::BenchOpts;
use mixen_graph::StructuralStats;

/// Paper's Table 1 values for side-by-side comparison: (V_hub, E_hub, Reg,
/// Seed, Sink, Iso) percentages.
const PAPER: [(&str, [f64; 6]); 8] = [
    ("weibo", [1.0, 99.0, 1.0, 99.0, 0.0, 0.0]),
    ("track", [5.0, 88.0, 46.0, 54.0, 0.0, 0.0]),
    ("wiki", [11.0, 88.0, 22.0, 33.0, 45.0, 0.0]),
    ("pld", [15.0, 82.0, 56.0, 8.0, 28.0, 8.0]),
    ("rmat", [7.0, 94.0, 26.0, 7.0, 8.0, 59.0]),
    ("kron", [8.0, 92.0, 49.0, 0.0, 0.0, 51.0]),
    ("road", [50.0, 66.0, 100.0, 0.0, 0.0, 0.0]),
    ("urand", [52.0, 59.0, 100.0, 0.0, 0.0, 0.0]),
];

fn main() {
    let opts = BenchOpts::from_args();
    println!("Table 1: structural characteristics (measured | paper)");
    println!(
        "{:>8}  {:>11}  {:>11}  {:>9}  {:>9}  {:>9}  {:>9}",
        "graph", "V_hub %", "E_hub %", "Reg %", "Seed %", "Sink %", "Iso %"
    );
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let s = StructuralStats::of(&g);
        let paper = PAPER
            .iter()
            .find(|(name, _)| *name == d.name())
            .map(|(_, v)| *v)
            .unwrap_or([f64::NAN; 6]);
        let measured = [
            s.v_hub * 100.0,
            s.e_hub * 100.0,
            s.frac_regular * 100.0,
            s.frac_seed * 100.0,
            s.frac_sink * 100.0,
            s.frac_isolated * 100.0,
        ];
        print!("{:>8}", d.name());
        for (m, p) in measured.iter().zip(paper) {
            print!("  {m:>4.0} |{p:>4.0}");
        }
        println!();
    }
}
