//! Reproduces **Fig. 4**: normalized execution time (bars) and normalized
//! memory traffic (dots) of Mixen vs its Block and Pull variants, PageRank
//! per iteration. Traffic comes from the cache-simulator twins; time from
//! the real engines. Everything is normalized to Mixen (= 1.0).

use mixen_algos::{pagerank, AnyEngine, EngineKind, PageRankOpts};
use mixen_bench::{time_per_iter, BenchOpts};
use mixen_cachesim::{trace_block, trace_mixen, trace_pull, CacheConfig};
use mixen_core::{MixenEngine, MixenOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let cfg = CacheConfig::scaled_paper_aggregate(opts.divisor(), 20);
    println!("Fig 4: normalized execution time / normalized memory traffic (Mixen = 1.0)");
    println!(
        "{:>8}  {:>12} {:>12} {:>12}  {:>12} {:>12} {:>12}  {:>11}",
        "graph",
        "t(Mixen)",
        "t(Block)",
        "t(Pull)",
        "mem(Mixen)",
        "mem(Block)",
        "mem(Pull)",
        "pull MB/it"
    );
    println!("(time normalized to Mixen; traffic normalized to Pull)");
    for d in &opts.datasets {
        let g = opts.gen(*d);

        // Execution time per PageRank iteration.
        let mut times = Vec::new();
        for kind in [EngineKind::Mixen, EngineKind::Gpop, EngineKind::GraphMat] {
            let engine = AnyEngine::build(kind, &g);
            let secs = time_per_iter(opts.iters, |n| {
                std::hint::black_box(pagerank(&g, &engine, PageRankOpts::default(), n));
            });
            times.push(secs);
        }

        // Memory traffic from the instrumented twins.
        let mixen_engine = MixenEngine::new(&g, MixenOpts::default());
        let block_engine = mixen_baselines::BlockEngine::with_default_blocks(&g);
        let traffic = [
            trace_mixen(&mixen_engine, &cfg).dram_bytes() as f64,
            trace_block(&g, block_engine.blocked(), &cfg).dram_bytes() as f64,
            trace_pull(&g, &cfg).dram_bytes() as f64,
        ];

        let tn = mixen_bench::normalize(&times);
        // Normalize traffic against Pull (always nonzero); Mixen's traffic
        // can legitimately be zero when the regular working set fits the
        // scaled LLC (weibo at tiny scales).
        let pull_traffic = traffic[2].max(64.0);
        println!(
            "{:>8}  {:>12.2} {:>12.2} {:>12.2}  {:>12.2} {:>12.2} {:>12.2}  {:>9.2}MB",
            d.name(),
            tn[0],
            tn[1],
            tn[2],
            traffic[0] / pull_traffic,
            traffic[1] / pull_traffic,
            traffic[2] / pull_traffic,
            pull_traffic / 1e6,
        );
    }
    println!(
        "\nExpected shape (paper): Mixen lowest on both axes for skewed graphs;\n\
         Pull's traffic highest except on road, where Pull beats Block."
    );
}
