//! Reproduces **Fig. 7**: LLC hits and memory traffic as functions of the
//! block size, for graph *pld* (the paper's worked example of the
//! block-size trade-off). Small blocks overload LLC and memory; oversized
//! blocks stop fitting in cache; the best execution time lands where both
//! factors are balanced, around the (scaled) L2 capacity.

use mixen_algos::{pagerank, PageRankOpts};
use mixen_bench::{time_per_iter, BenchOpts};
use mixen_cachesim::{trace_mixen, CacheConfig};
use mixen_core::{MixenEngine, MixenOpts};
use mixen_graph::Dataset;

fn main() {
    let mut opts = BenchOpts::from_args();
    if opts.datasets.len() == Dataset::ALL.len() {
        opts.datasets = vec![Dataset::Pld];
    }
    let cfg = CacheConfig::scaled_paper(opts.divisor());
    let l1_nodes = cfg.levels[0].capacity / 4;
    let l2_nodes = cfg.levels[1].capacity / 4;
    let sides: Vec<usize> = (0..11).map(|i| (l1_nodes / 4) << i).collect();

    for d in &opts.datasets {
        let g = opts.gen(*d);
        println!(
            "Fig 7 ({}): LLC hits and DRAM traffic vs block side (scaled L1 = {} nodes, L2 = {} nodes)",
            d.name(),
            l1_nodes,
            l2_nodes
        );
        println!(
            "{:>10} {:>12} {:>14} {:>14} {:>12}",
            "side", "LLC hits", "LLC miss %", "DRAM MB/iter", "time (norm)"
        );
        let mut rows = Vec::new();
        for &c in &sides {
            let engine = MixenEngine::new(
                &g,
                MixenOpts {
                    block_side: c,
                    min_tasks_per_thread: 1,
                    ..MixenOpts::default()
                },
            );
            let report = trace_mixen(&engine, &cfg);
            let secs = time_per_iter(opts.iters, |n| {
                std::hint::black_box(pagerank(&g, &engine, PageRankOpts::default(), n));
            });
            rows.push((c, report, secs));
        }
        let best = rows
            .iter()
            .map(|r| r.2)
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        for (c, report, secs) in &rows {
            println!(
                "{:>10} {:>12} {:>13.0}% {:>14.3} {:>12.2}",
                c,
                report.llc().hits,
                report.llc().miss_ratio() * 100.0,
                report.dram_bytes() as f64 / (1024.0 * 1024.0),
                secs / best
            );
        }
    }
}
