//! Serve load benchmark (EXPERIMENTS.md "Serving layer" protocol): starts
//! an in-process `mixen-serve` server on the first requested dataset and
//! sweeps closed-loop client concurrency, reporting p50/p99 latency and
//! sustained QPS per level.
//!
//! The server runs with its default worker/queue configuration (4 workers,
//! 128-slot admission queue) on the global pool width, so `--threads` only
//! affects the resident engine, not the request path. Latency includes
//! connect + queueing + service — the full client-visible cost.

use std::sync::Arc;

use mixen_bench::BenchOpts;
use mixen_core::Json;
use mixen_serve::{run_load, LoadOpts, ServeOpts, Server};

/// Client concurrency levels of the sweep.
const SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Requests per client at each level.
const REQUESTS_PER_CLIENT: usize = 150;

fn main() {
    let opts = BenchOpts::from_args();
    let dataset = *opts.datasets.first().expect("at least one dataset");
    let g = Arc::new(opts.gen(dataset));
    println!(
        "serve load sweep on {} ({:?}): n = {}, m = {}, {} requests/client",
        dataset.name(),
        opts.scale,
        g.n(),
        g.m(),
        REQUESTS_PER_CLIENT
    );

    let handle = Server::start(Arc::clone(&g), ServeOpts::default()).expect("server start");
    let addr = handle.addr();
    println!(
        "{:>6}  {:>8} {:>8} {:>8}  {:>9} {:>9}  {:>9}",
        "conc", "ok", "reject", "errors", "p50_ms", "p99_ms", "qps"
    );
    let mut levels: Vec<Json> = Vec::new();
    for &concurrency in &SWEEP {
        let report = run_load(
            addr,
            &LoadOpts {
                concurrency,
                requests_per_client: REQUESTS_PER_CLIENT,
                top_k: 10,
            },
        );
        println!(
            "{:>6}  {:>8} {:>8} {:>8}  {:>9.3} {:>9.3}  {:>9.1}",
            report.concurrency,
            report.ok,
            report.rejected,
            report.errors,
            report.p50_ms,
            report.p99_ms,
            report.qps
        );
        levels.push(report.to_json());
    }
    handle.shutdown_and_join();

    opts.write_json_sidecar(
        "serve_bench",
        vec![
            ("dataset".to_string(), Json::Str(dataset.name().to_string())),
            ("levels".to_string(), Json::Arr(levels)),
        ],
    );
}
