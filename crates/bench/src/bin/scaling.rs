//! Thread-scaling sweep of the Mixen engine (EXPERIMENTS.md "Scaling"
//! protocol). Runs PageRank at 1/2/4/8 worker lanes on every requested
//! dataset, reporting seconds per iteration, speedup over the single-lane
//! run, and the maximum absolute score deviation from the single-lane
//! scores (the determinism tolerance the engine documents).
//!
//! The sweep uses `mixen_pool::with_threads`, so each measurement runs on a
//! fresh pool of exactly that width regardless of `MIXEN_THREADS` or the
//! host default. Speedups are only meaningful up to the host's physical
//! parallelism: on a single-core host every configuration shares one core
//! and the sweep measures scheduling overhead, not speedup — the table
//! therefore also prints the host's available parallelism.

use mixen_algos::{pagerank, PageRankOpts};
use mixen_bench::{geomean, time_per_iter, BenchOpts};
use mixen_core::{Json, MixenEngine, MixenOpts};

/// Lane counts of the sweep (EXPERIMENTS.md commits results for these).
const SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let opts = BenchOpts::from_args();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "PageRank thread scaling: seconds/iteration at 1/2/4/8 lanes \
         ({} iterations, host parallelism {host})",
        opts.iters
    );
    println!(
        "{:>8}  {:>9} {:>9} {:>9} {:>9}  {:>7} {:>7} {:>7}  {:>9}",
        "graph", "t1", "t2", "t4", "t8", "s2", "s4", "s8", "max|dev|"
    );
    let mut graphs_json: Vec<Json> = Vec::new();
    // Per-lane-count speedups across graphs, for the geomean summary row.
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); SWEEP.len()];
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let mut secs = Vec::with_capacity(SWEEP.len());
        let mut baseline: Vec<f32> = Vec::new();
        let mut max_dev = 0.0f64;
        for (i, &t) in SWEEP.iter().enumerate() {
            let (scores, per) = mixen_pool::with_threads(t, || {
                // Engine construction inside the override so the blocked
                // layout is also built at this width; only the iterations
                // are timed, matching the other reproduction binaries.
                let engine = MixenEngine::new(&g, MixenOpts::default());
                let mut out = Vec::new();
                let per = time_per_iter(opts.iters, |n| {
                    out = pagerank(&g, &engine, PageRankOpts::default(), n);
                });
                (out, per)
            });
            if i == 0 {
                baseline = scores;
            } else {
                let dev = scores
                    .iter()
                    .zip(&baseline)
                    .map(|(a, b)| (a - b).abs() as f64)
                    .fold(0.0, f64::max);
                max_dev = max_dev.max(dev);
                speedups[i].push(secs[0] / per.max(1e-12));
            }
            secs.push(per);
        }
        println!(
            "{:>8}  {:>9.5} {:>9.5} {:>9.5} {:>9.5}  {:>6.2}x {:>6.2}x {:>6.2}x  {:>9.2e}",
            d.name(),
            secs[0],
            secs[1],
            secs[2],
            secs[3],
            secs[0] / secs[1].max(1e-12),
            secs[0] / secs[2].max(1e-12),
            secs[0] / secs[3].max(1e-12),
            max_dev
        );
        graphs_json.push(Json::Obj(vec![
            ("graph".into(), Json::Str(d.name().into())),
            ("n".into(), Json::from_u64(g.n() as u64)),
            ("m".into(), Json::from_u64(g.m() as u64)),
            (
                "threads".into(),
                Json::Arr(SWEEP.iter().map(|&t| Json::from_u64(t as u64)).collect()),
            ),
            (
                "seconds_per_iter".into(),
                Json::Arr(secs.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("max_abs_deviation_vs_t1".into(), Json::Num(max_dev)),
        ]));
    }
    print!(
        "{:>8}  {:>9} {:>9} {:>9} {:>9}  ",
        "geomean", "", "", "", ""
    );
    for s in speedups.iter().skip(1) {
        print!("{:>6.2}x ", geomean(s));
    }
    println!();
    println!(
        "\n(sN = t1 time / tN time. Expect sN ≈ min(N, host cores) at best;\n\
         with host parallelism {host} every lane count above {host} only adds\n\
         scheduling overhead. max|dev| is the largest per-node score gap vs\n\
         the single-lane run — nonzero because float sums reduce in a\n\
         different association order per lane count.)"
    );
    opts.write_json_sidecar(
        "scaling",
        vec![
            ("host_parallelism".into(), Json::from_u64(host as u64)),
            ("graphs".into(), Json::Arr(graphs_json)),
        ],
    );
}
