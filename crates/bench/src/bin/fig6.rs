//! Reproduces **Fig. 6**: normalized PageRank execution time with varied
//! block size, per graph. The paper sweeps 16 KB – 1 MB blocks on the full
//! hierarchy; at 1/`divisor` dataset scale the cache hierarchy scales too,
//! so the sweep covers the same ratio range around the scaled L1/L2
//! capacities. The expected shape: a U-curve whose minimum falls at a block
//! fitting L1–L2, degrading at both extremes.

use mixen_algos::{pagerank, PageRankOpts};
use mixen_bench::{time_per_iter, BenchOpts};
use mixen_cachesim::CacheConfig;
use mixen_core::{MixenEngine, MixenOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let cfg = CacheConfig::scaled_paper(opts.divisor());
    let l1_nodes = cfg.levels[0].capacity / 4;
    let l2_nodes = cfg.levels[1].capacity / 4;
    // Sweep block sides (nodes) in powers of two around the scaled caches.
    let sides: Vec<usize> = (0..11).map(|i| (l1_nodes / 4) << i).collect();

    println!(
        "Fig 6: normalized execution time vs block side (scaled L1 = {} nodes, L2 = {} nodes)",
        l1_nodes, l2_nodes
    );
    print!("{:>8}", "graph");
    for c in &sides {
        print!(" {:>8}", format!("{}", c));
    }
    println!("   (block side in nodes: {sides:?})");

    for d in &opts.datasets {
        let g = opts.gen(*d);
        let mut times = Vec::new();
        for &c in &sides {
            let engine = MixenEngine::new(
                &g,
                MixenOpts {
                    block_side: c,
                    min_tasks_per_thread: 1,
                    ..MixenOpts::default()
                },
            );
            let secs = time_per_iter(opts.iters, |n| {
                std::hint::black_box(pagerank(&g, &engine, PageRankOpts::default(), n));
            });
            times.push(secs);
        }
        let best = times
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        print!("{:>8}", d.name());
        for t in &times {
            print!(" {:>8.2}", t / best);
        }
        println!();
    }
    println!(
        "\n(1.00 marks each graph's best block side; the paper's optimum sits at L1-L2 capacity.)"
    );
}
