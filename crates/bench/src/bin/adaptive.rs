//! Extension benchmark: adaptive (delta) PageRank vs. dense iteration.
//!
//! Convergence-driven runs spend most late iterations re-propagating
//! already-converged nodes; the delta extension scatters only nodes whose
//! rank still moves. This binary reports, per graph: iterations to
//! convergence, total node-scatters for dense vs. adaptive execution (the
//! work ratio), wall-clock for both, and the max score deviation.

use mixen_algos::{pagerank, pagerank_adaptive, PageRankOpts};
use mixen_bench::{timed, BenchOpts};
use mixen_core::{MixenEngine, MixenOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let eps = 1e-9f32;
    println!("Adaptive (delta) PageRank vs dense, epsilon = {eps:.0e}");
    println!(
        "{:>8}  {:>6} {:>12} {:>12} {:>8}  {:>9} {:>9}  {:>10}",
        "graph", "iters", "dense scat", "delta scat", "ratio", "t dense", "t delta", "max dev"
    );
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let engine = MixenEngine::new(&g, MixenOpts::default());
        let ((scores_a, stats), t_delta) =
            timed(|| pagerank_adaptive(&g, &engine, PageRankOpts::default(), eps, 200));
        let (scores_d, t_dense) =
            timed(|| pagerank(&g, &engine, PageRankOpts::default(), stats.iterations));
        let r = engine.filtered().num_regular() as u64;
        let dense_scatters = r * stats.iterations as u64;
        let dev = scores_a
            .iter()
            .zip(&scores_d)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{:>8}  {:>6} {:>12} {:>12} {:>7.1}x  {:>8.3}s {:>8.3}s  {:>10.2e}",
            d.name(),
            stats.iterations,
            dense_scatters,
            stats.scattered_nodes,
            dense_scatters as f64 / stats.scattered_nodes.max(1) as f64,
            t_dense,
            t_delta,
            dev
        );
    }
    println!(
        "\n(ratio = dense node-scatters / adaptive node-scatters at equal\n\
         iteration counts; deviations stay at float-rounding level.)"
    );
}
