//! Reproduces **Fig. 5**: normalized L2 cache references split into hits
//! (lower, shaded in the paper) and misses (upper, empty), for Mixen and
//! its Block / Pull variants. The paper's headline: Pull misses ≈ 62 % of
//! references; Mixen ≈ 27 %, Block ≈ 29 %.

use mixen_baselines::BlockEngine;
use mixen_bench::BenchOpts;
use mixen_cachesim::{trace_block, trace_mixen, trace_pull, CacheConfig, TraceReport};
use mixen_core::{MixenEngine, MixenOpts};

fn row(report: &TraceReport) -> (u64, u64, f64) {
    let l2 = report.l2();
    (l2.hits, l2.misses, l2.miss_ratio())
}

fn main() {
    let opts = BenchOpts::from_args();
    let cfg = CacheConfig::scaled_paper_aggregate(opts.divisor(), 20);
    println!("Fig 5: L2 references (hits + misses), normalized to Mixen's total");
    println!(
        "{:>8}  {:>22} {:>22} {:>22}",
        "graph", "Mixen hit/miss/ratio", "Block hit/miss/ratio", "Pull hit/miss/ratio"
    );
    let mut totals = [(0u64, 0u64); 3];
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let mixen_engine = MixenEngine::new(&g, MixenOpts::default());
        let block_engine = BlockEngine::with_default_blocks(&g);
        let reports = [
            trace_mixen(&mixen_engine, &cfg),
            trace_block(&g, block_engine.blocked(), &cfg),
            trace_pull(&g, &cfg),
        ];
        let base = (reports[0].l2().references as f64).max(1.0);
        print!("{:>8}", d.name());
        for (i, rep) in reports.iter().enumerate() {
            let (h, m, ratio) = row(rep);
            totals[i].0 += h;
            totals[i].1 += m;
            print!(
                "  {:>6.2}/{:>6.2}/{:>4.0}%",
                h as f64 / base,
                m as f64 / base,
                ratio * 100.0
            );
        }
        println!();
    }
    println!("\nOverall miss ratios (paper: Mixen 27%, Block 29%, Pull 62%):");
    for (name, (h, m)) in ["Mixen", "Block", "Pull"].iter().zip(totals) {
        let ratio = m as f64 / (h + m).max(1) as f64;
        println!("  {name:>6}: {:.0}%", ratio * 100.0);
    }
}
