//! Validates the §5 analytic performance model against the instrumented
//! twins: predicted traffic (elements → bytes at the 4-byte property width)
//! vs the simulator's logical traffic, and predicted random-access counts
//! (`b²`, `(n/c)²`, `m`) per variant.

use mixen_baselines::BlockEngine;
use mixen_bench::BenchOpts;
use mixen_cachesim::{trace_block, trace_mixen, trace_pull, CacheConfig};
use mixen_core::{MixenEngine, MixenOpts, PerfModel};

fn main() {
    let opts = BenchOpts::from_args();
    let cfg = CacheConfig::scaled_paper(opts.divisor());
    println!("Model check: Eq.(1)/(2) predictions vs instrumented twins");
    println!(
        "{:>8}  {:>11} {:>11} {:>5}  {:>11} {:>11} {:>5}  {:>9} {:>9}  {:>9} {:>9}",
        "graph",
        "mx pred B",
        "mx meas B",
        "r",
        "pl pred B",
        "pl meas B",
        "r",
        "jump pred",
        "jump meas",
        "pull pred",
        "pull meas"
    );
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let engine = MixenEngine::new(&g, MixenOpts::default());
        let c = engine.blocked().block_side();
        let model = PerfModel::from_filtered(engine.filtered(), c);

        // Predicted traffic in bytes at 4-byte elements.
        let mixen_pred = model.mixen_traffic_bytes(4);
        let pull_pred = model.pull_traffic() * 4.0;

        // Measured logical traffic (CPU-side bytes; index arrays included,
        // so measured >= predicted — the model counts only data elements).
        let mixen_meas = trace_mixen(&engine, &cfg).logical_bytes as f64;
        let pull_meas = trace_pull(&g, &cfg).logical_bytes as f64;

        let block_engine = BlockEngine::with_default_blocks(&g);
        let _ = trace_block(&g, block_engine.blocked(), &cfg);

        // Eq.(2) counts only cross-block bin switches (b^2); the measured
        // per-array jump counter additionally sees cache-resident restarts
        // *inside* blocks, so compare orderings, not magnitudes: Mixen's
        // jumps must stay at or below Pull's, whose jumps track m (every x
        // read is random).
        let mixen_jumps = trace_mixen(&engine, &cfg).random_jumps as f64;
        let pull_jumps = trace_pull(&g, &cfg).random_jumps as f64;

        println!(
            "{:>8}  {:>11.0} {:>11.0} {:>5.2}  {:>11.0} {:>11.0} {:>5.2}  {:>9.0} {:>9.0}  {:>9.0} {:>9.0}",
            d.name(),
            mixen_pred,
            mixen_meas,
            mixen_meas / mixen_pred.max(1.0),
            pull_pred,
            pull_meas,
            pull_meas / pull_pred.max(1.0),
            model.mixen_random(),
            mixen_jumps,
            model.pull_random(),
            pull_jumps,
        );
    }
    println!(
        "\nThe model counts data elements only (no index arrays), so measured/\n\
         predicted byte ratios must be near 1 and stable across graphs. The\n\
         measured jump counter includes cache-resident within-block restarts\n\
         the model's Eq.(2) idealizes away; the comparable signal is the\n\
         ordering (Mixen <= Pull on skewed graphs, shrinking with alpha)."
    );
}
