//! Kernel microbenchmarks and perf-regression baseline (EXPERIMENTS.md
//! "Kernel microbenchmarks" protocol).
//!
//! A/B-compares the bandwidth-tuned blocked data path against the naive
//! walk on the *same* filtered regular subgraph. Both variants run the
//! identical kernel code in `mixen_core::scga`; they differ only in the
//! partition metadata the kernels iterate:
//!
//! * **naive** — `load_balance`, `gather_balance` and `skip_empty_blocks`
//!   all off plus `kernel_width = 1` and `prefetch_distance = 0`: one
//!   fixed-height task per block-row, one task per block-column, skip
//!   lists that enumerate *every* block, and strictly scalar inner loops —
//!   the pre-tuning walk.
//! * **tuned** — `MixenOpts::default()`: §4.2 nnz-proportional scatter-row
//!   splits and gather-column chunks, nonempty-block skip lists, the
//!   unrolled SIMD-width copy/combine kernels and software prefetch at the
//!   default distance.
//!
//! Per dataset and kernel the table reports naive and tuned seconds per
//! call, the ratio, and the achieved bin bandwidth in GB/s (streamed bin
//! bytes over kernel seconds; blank for BFS, which streams no value bins).
//! A second table sweeps the compressed bin encodings (`f16`, `q16`) on
//! the tuned partition, reporting streamed bytes, the reduction vs `f32`,
//! and the measured rank agreement against the lossless run — checked
//! against the Scatter-time accuracy budget. The JSON sidecar
//! (`results/kernels_small.json`) is the committed regression baseline
//! that CI parses for schema drift. The `identical` flag asserts the two
//! variants produced bit-for-bit equal SpMV outputs — scheduling, width
//! and prefetch changes must never leak into the numerics.

use std::sync::atomic::{AtomicI32, Ordering};

use mixen_bench::{geomean, time_per_iter, timed, BenchOpts};
use mixen_core::bins::{DynamicBins, ACCURACY_BUDGET};
use mixen_core::{scga, BinEncoding, BlockedSubgraph, FilteredGraph, Json, Metrics, MixenOpts};

/// Kernels measured per variant, in report order.
const KERNELS: [&str; 4] = ["scatter", "gather", "spmv_round", "bfs_dense_level"];

/// Paired timing rounds per kernel; the per-variant figure is the minimum
/// across rounds (see [`measure_pair`]).
const ROUNDS: usize = 8;

/// Floor on each timed window. A single kernel call at small scale is
/// microseconds — far below scheduler jitter on a quota-throttled host —
/// so the rep count per round is scaled up until one window is at least
/// this long.
const MIN_WINDOW_SECONDS: f64 = 5e-3;

/// Upper bound on the calibrated rep count, so a degenerate (near-empty)
/// kernel cannot spin the bench for seconds per round.
const MAX_REPS: usize = 200_000;

/// Seconds per call for each entry of [`KERNELS`], plus the final SpMV
/// output used for the cross-variant identity check.
struct Measured {
    seconds: [f64; KERNELS.len()],
    spmv_out: Vec<f32>,
}

/// One variant's working set. The input vector is a fixed deterministic
/// ramp so both variants stream identical values.
struct VariantState<'b> {
    blocked: &'b BlockedSubgraph,
    x: Vec<f32>,
    bins: DynamicBins<f32>,
    y: Vec<f32>,
    depth: Vec<AtomicI32>,
}

impl<'b> VariantState<'b> {
    fn new(blocked: &'b BlockedSubgraph) -> Self {
        let r = blocked.r();
        Self {
            blocked,
            x: (0..r)
                .map(|i| (i as f32).mul_add(1e-3, 1.0).sin())
                .collect(),
            bins: DynamicBins::new(blocked),
            y: vec![0.0f32; r],
            depth: (0..r).map(|_| AtomicI32::new(0)).collect(),
        }
    }

    /// Runs `n` calls of kernel `k` (index into [`KERNELS`]).
    fn run(&mut self, k: usize, n: usize) {
        for _ in 0..n {
            match k {
                0 => scga::scatter(self.blocked, &mut self.x, &mut self.bins, None),
                1 => {
                    self.y.fill(0.0);
                    scga::gather(self.blocked, &self.bins, &mut self.y, |_, s| s);
                }
                2 => {
                    scga::scatter(self.blocked, &mut self.x, &mut self.bins, None);
                    self.y.fill(0.0);
                    scga::gather(self.blocked, &self.bins, &mut self.y, |_, s| s);
                }
                _ => {
                    // Reset claims so every call expands the same full
                    // frontier; the O(r) reset is identical across variants.
                    for d in &self.depth {
                        d.store(0, Ordering::Relaxed);
                    }
                    std::hint::black_box(scga::bfs_level_dense(self.blocked, &self.depth, 0).len());
                }
            }
        }
    }

    fn spmv_out(&mut self) -> Vec<f32> {
        self.run(2, 1);
        self.y.clone()
    }
}

/// Times every kernel over both partitions, interleaved: per kernel, one
/// untimed warm-up call per variant, then [`ROUNDS`] paired timing
/// rounds, keeping each variant's minimum. Measuring all of A then all of
/// B is systematically unfair on a throttled shared host (whichever
/// variant runs second absorbs the CPU-quota backoff) — and so is strict
/// A-B alternation, where every B window still follows an A burn. The
/// rounds therefore swap order (A-B, B-A, ...) so residual throttle bias
/// lands on both variants equally, and min-of-rounds drops the windows
/// that paid it.
fn measure_pair(
    naive: &BlockedSubgraph,
    tuned: &BlockedSubgraph,
    iters: usize,
) -> (Measured, Measured) {
    let mut a = VariantState::new(naive);
    let mut b = VariantState::new(tuned);
    let mut sa = [f64::INFINITY; KERNELS.len()];
    let mut sb = [f64::INFINITY; KERNELS.len()];
    // Warm both variants and calibrate a rep count per kernel: `iters`
    // calls of a microsecond kernel is a window far below timer and
    // scheduler granularity, and ratios measured there are noise, not
    // bandwidth.
    let mut reps = [1usize; KERNELS.len()];
    for (k, r) in reps.iter_mut().enumerate() {
        a.run(k, 1);
        b.run(k, 1);
        let (_, probe) = timed(|| a.run(k, 1));
        *r = iters
            .max((MIN_WINDOW_SECONDS / probe.max(1e-9)).ceil() as usize)
            .min(MAX_REPS);
    }
    // Rounds are outermost so one kernel's windows are spread across the
    // whole graph's measurement instead of sitting back-to-back inside a
    // single CPU-quota throttle burst; min-of-rounds then only needs one
    // clean window per variant, not a clean stretch.
    for round in 0..ROUNDS {
        for k in 0..KERNELS.len() {
            if round % 2 == 0 {
                sa[k] = sa[k].min(time_per_iter(reps[k], |n| a.run(k, n)));
                sb[k] = sb[k].min(time_per_iter(reps[k], |n| b.run(k, n)));
            } else {
                sb[k] = sb[k].min(time_per_iter(reps[k], |n| b.run(k, n)));
                sa[k] = sa[k].min(time_per_iter(reps[k], |n| a.run(k, n)));
            }
        }
    }
    let base = Measured {
        seconds: sa,
        spmv_out: a.spmv_out(),
    };
    let best = Measured {
        seconds: sb,
        spmv_out: b.spmv_out(),
    };
    (base, best)
}

/// Bin bytes one call of kernel `k` streams: Scatter writes every dynamic
/// slot once, Gather reads every slot once, a SpMV round does both. BFS
/// propagates levels without touching the value bins at all.
fn bin_bytes_per_call(k: usize, slots: usize, bytes_per_slot: usize) -> Option<u64> {
    match k {
        0 | 1 => Some((slots * bytes_per_slot) as u64),
        2 => Some((slots * bytes_per_slot * 2) as u64),
        _ => None,
    }
}

/// One compressed-encoding measurement on the tuned partition: streamed
/// bin bytes (from the obs counters), the byte reduction vs `f32`, and the
/// rank agreement of a SpMV round against the lossless output.
struct EncodingRun {
    encoding: BinEncoding,
    bin_bytes_streamed: u64,
    bytes_ratio_vs_f32: f64,
    rank_agreement: f64,
    within_budget: bool,
}

/// Sweeps every [`BinEncoding`] over one scatter+gather round on the tuned
/// partition. `f32` runs first and anchors both the byte baseline and the
/// agreement reference.
fn sweep_encodings(tuned: &BlockedSubgraph) -> Vec<EncodingRun> {
    let r = tuned.r();
    let x_init: Vec<f32> = (0..r).map(|i| (i as f32).mul_add(1e-3, 1.0).sin()).collect();
    let mut f32_bytes = 0u64;
    let mut y_ref: Vec<f32> = Vec::new();
    let mut runs = Vec::new();
    for enc in BinEncoding::ALL {
        let metrics = Metrics::default();
        let mut x = x_init.clone();
        let mut bins: DynamicBins<f32> = DynamicBins::with_encoding(tuned, enc);
        let mut y = vec![0.0f32; r];
        let scattered =
            scga::try_scatter_with(tuned, &mut x, &mut bins, None, Some(&metrics)).is_ok();
        let (bytes, agreement) = if scattered {
            scga::gather(tuned, &bins, &mut y, |_, s| s);
            let bytes = metrics.snapshot().get("bin_bytes_streamed");
            if enc == BinEncoding::F32 {
                f32_bytes = bytes;
                y_ref = y.clone();
            }
            let max_ref = y_ref.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-30);
            let max_err = y
                .iter()
                .zip(&y_ref)
                .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
            (bytes, f64::from(max_err / max_ref))
        } else {
            // The accuracy gate rejected this encoding for this stream —
            // report it as out of budget with no bytes moved.
            (0, f64::INFINITY)
        };
        runs.push(EncodingRun {
            encoding: enc,
            bin_bytes_streamed: bytes,
            bytes_ratio_vs_f32: f32_bytes as f64 / (bytes as f64).max(1.0),
            rank_agreement: agreement,
            within_budget: scattered && agreement <= ACCURACY_BUDGET,
        });
    }
    runs
}

fn main() {
    let opts = BenchOpts::from_args();
    let threads = mixen_pool::current_num_threads();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Scatter/Gather kernel microbenchmarks: naive full-grid walk vs \
         nnz-balanced + skip-list path ({} iterations, {threads} lanes, \
         host parallelism {host})",
        opts.iters
    );
    println!(
        "{:>8} {:>15}  {:>11} {:>11} {:>7} {:>10} {:>10}",
        "graph", "kernel", "naive_s", "tuned_s", "ratio", "naive_gbps", "tuned_gbps"
    );
    let mut graphs_json: Vec<Json> = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); KERNELS.len()];
    let mut all_identical = true;
    for d in &opts.datasets {
        let g = opts.gen(*d);
        // `--reorder` swaps the relabel policy under both variants, so the
        // A/B stays a pure partition-metadata comparison at any ordering.
        let tuned_opts = MixenOpts {
            ordering: opts.ordering_for(&g),
            ..MixenOpts::default()
        };
        let naive_opts = MixenOpts {
            load_balance: false,
            gather_balance: false,
            skip_empty_blocks: false,
            kernel_width: 1,
            prefetch_distance: 0,
            ..tuned_opts
        };
        let filtered = FilteredGraph::with_ordering(&g, tuned_opts.ordering);
        let naive = BlockedSubgraph::new(filtered.reg_csr(), &naive_opts, threads);
        let tuned = BlockedSubgraph::new(filtered.reg_csr(), &tuned_opts, threads);
        let (base, best) = measure_pair(&naive, &tuned, opts.iters);
        let identical = base.spmv_out == best.spmv_out;
        all_identical &= identical;
        let stats = tuned.split_stats();
        // Both timed variants stream full-width (f32) bins; the compressed
        // encodings are swept separately below.
        let slots = tuned.total_msg_slots();
        let mut kernels_json: Vec<Json> = Vec::new();
        for (k, name) in KERNELS.iter().enumerate() {
            let ratio = base.seconds[k] / best.seconds[k].max(1e-12);
            speedups[k].push(ratio);
            let bytes = bin_bytes_per_call(k, slots, std::mem::size_of::<f32>());
            let gbps = |secs: f64| bytes.map(|b| b as f64 / secs.max(1e-12) / 1e9);
            let fmt = |g: Option<f64>| g.map_or("-".into(), |g| format!("{g:.2}"));
            println!(
                "{:>8} {:>15}  {:>11.6} {:>11.6} {:>6.2}x {:>10} {:>10}",
                d.name(),
                name,
                base.seconds[k],
                best.seconds[k],
                ratio,
                fmt(gbps(base.seconds[k])),
                fmt(gbps(best.seconds[k])),
            );
            let jnum = |g: Option<f64>| g.map_or(Json::Null, Json::Num);
            kernels_json.push(Json::Obj(vec![
                ("kernel".into(), Json::Str((*name).into())),
                ("naive_seconds".into(), Json::Num(base.seconds[k])),
                ("tuned_seconds".into(), Json::Num(best.seconds[k])),
                ("speedup".into(), Json::Num(ratio)),
                (
                    "bin_bytes_per_call".into(),
                    bytes.map_or(Json::Null, Json::from_u64),
                ),
                ("naive_gbps".into(), jnum(gbps(base.seconds[k]))),
                ("tuned_gbps".into(), jnum(gbps(best.seconds[k]))),
            ]));
        }
        if !identical {
            eprintln!(
                "warning: {}: tuned SpMV output differs from naive — \
                 the scheduling change leaked into the numerics",
                d.name()
            );
        }
        let enc_runs = sweep_encodings(&tuned);
        let encodings_json: Vec<Json> = enc_runs
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("encoding".into(), Json::Str(e.encoding.name().into())),
                    (
                        "bin_bytes_streamed".into(),
                        Json::from_u64(e.bin_bytes_streamed),
                    ),
                    ("bytes_ratio_vs_f32".into(), Json::Num(e.bytes_ratio_vs_f32)),
                    ("rank_agreement".into(), Json::Num(e.rank_agreement)),
                    ("within_budget".into(), Json::Bool(e.within_budget)),
                ])
            })
            .collect();
        for e in &enc_runs {
            println!(
                "{:>8} {:>15}  {:>11} {:>11.2} {:>11.3e} {:>7}",
                d.name(),
                format!("bins[{}]", e.encoding.name()),
                e.bin_bytes_streamed,
                e.bytes_ratio_vs_f32,
                e.rank_agreement,
                if e.within_budget { "ok" } else { "OVER" },
            );
        }
        graphs_json.push(Json::Obj(vec![
            ("graph".into(), Json::Str(d.name().into())),
            (
                "ordering".into(),
                Json::Str(tuned_opts.ordering.name().into()),
            ),
            ("n".into(), Json::from_u64(g.n() as u64)),
            ("m".into(), Json::from_u64(g.m() as u64)),
            ("regular_nnz".into(), Json::from_u64(tuned.nnz() as u64)),
            (
                "partition".into(),
                Json::Obj(vec![
                    (
                        "scatter_tasks".into(),
                        Json::from_u64(stats.scatter_tasks as u64),
                    ),
                    (
                        "gather_tasks".into(),
                        Json::from_u64(stats.gather_tasks as u64),
                    ),
                    ("tasks_split".into(), Json::from_u64(stats.tasks_split())),
                    ("max_task_nnz".into(), Json::from_u64(stats.max_task_nnz())),
                ]),
            ),
            ("kernels".into(), Json::Arr(kernels_json)),
            ("encodings".into(), Json::Arr(encodings_json)),
            ("identical".into(), Json::Bool(identical)),
        ]));
    }
    print!("{:>8} {:>15}  {:>11} {:>11} ", "geomean", "", "", "");
    for s in &speedups {
        print!("{:>6.2}x ", geomean(s));
    }
    println!();
    println!(
        "\n(ratio = naive seconds / tuned seconds per kernel call; both\n\
         variants run identical kernel code over the same filtered subgraph\n\
         and differ only in partition metadata, unroll width and prefetch\n\
         distance. GB/s = streamed bin bytes / kernel seconds. bins[enc]\n\
         rows: streamed bytes, reduction vs f32, and rank agreement of one\n\
         SpMV round against the lossless output, checked against the 1e-3\n\
         accuracy budget.)"
    );
    let geomean_json = Json::Obj(
        KERNELS
            .iter()
            .zip(&speedups)
            .map(|(name, s)| ((*name).into(), Json::Num(geomean(s))))
            .collect(),
    );
    opts.write_json_sidecar(
        "kernels",
        vec![
            ("threads".into(), Json::from_u64(threads as u64)),
            ("host_parallelism".into(), Json::from_u64(host as u64)),
            ("graphs".into(), Json::Arr(graphs_json)),
            ("geomean_speedup".into(), geomean_json),
        ],
    );
    if !all_identical {
        std::process::exit(1);
    }
}
