//! Kernel microbenchmarks and perf-regression baseline (EXPERIMENTS.md
//! "Kernel microbenchmarks" protocol).
//!
//! A/B-compares the bandwidth-tuned blocked data path against the naive
//! walk on the *same* filtered regular subgraph. Both variants run the
//! identical kernel code in `mixen_core::scga`; they differ only in the
//! partition metadata the kernels iterate:
//!
//! * **naive** — `load_balance`, `gather_balance` and `skip_empty_blocks`
//!   all off: one fixed-height task per block-row, one task per
//!   block-column, and skip lists that enumerate *every* block, i.e. the
//!   pre-PR-5 full-grid walk.
//! * **tuned** — `MixenOpts::default()`: §4.2 nnz-proportional scatter-row
//!   splits and gather-column chunks plus nonempty-block skip lists.
//!
//! Per dataset and kernel the table reports naive and tuned seconds per
//! call and the ratio; the JSON sidecar (`results/kernels_small.json`) is
//! the committed regression baseline that CI parses for schema drift. The
//! `identical` flag asserts the two variants produced bit-for-bit equal
//! SpMV outputs — the tuned path is a pure scheduling change.

use std::sync::atomic::{AtomicI32, Ordering};

use mixen_bench::{geomean, time_per_iter, BenchOpts};
use mixen_core::bins::DynamicBins;
use mixen_core::{scga, BlockedSubgraph, FilteredGraph, Json, MixenOpts};

/// Kernels measured per variant, in report order.
const KERNELS: [&str; 4] = ["scatter", "gather", "spmv_round", "bfs_dense_level"];

/// Paired timing rounds per kernel; the per-variant figure is the minimum
/// across rounds (see [`measure_pair`]).
const ROUNDS: usize = 4;

/// Seconds per call for each entry of [`KERNELS`], plus the final SpMV
/// output used for the cross-variant identity check.
struct Measured {
    seconds: [f64; KERNELS.len()],
    spmv_out: Vec<f32>,
}

/// One variant's working set. The input vector is a fixed deterministic
/// ramp so both variants stream identical values.
struct VariantState<'b> {
    blocked: &'b BlockedSubgraph,
    x: Vec<f32>,
    bins: DynamicBins<f32>,
    y: Vec<f32>,
    depth: Vec<AtomicI32>,
}

impl<'b> VariantState<'b> {
    fn new(blocked: &'b BlockedSubgraph) -> Self {
        let r = blocked.r();
        Self {
            blocked,
            x: (0..r)
                .map(|i| (i as f32).mul_add(1e-3, 1.0).sin())
                .collect(),
            bins: DynamicBins::new(blocked),
            y: vec![0.0f32; r],
            depth: (0..r).map(|_| AtomicI32::new(0)).collect(),
        }
    }

    /// Runs `n` calls of kernel `k` (index into [`KERNELS`]).
    fn run(&mut self, k: usize, n: usize) {
        for _ in 0..n {
            match k {
                0 => scga::scatter(self.blocked, &mut self.x, &mut self.bins, None),
                1 => {
                    self.y.fill(0.0);
                    scga::gather(self.blocked, &self.bins, &mut self.y, |_, s| s);
                }
                2 => {
                    scga::scatter(self.blocked, &mut self.x, &mut self.bins, None);
                    self.y.fill(0.0);
                    scga::gather(self.blocked, &self.bins, &mut self.y, |_, s| s);
                }
                _ => {
                    // Reset claims so every call expands the same full
                    // frontier; the O(r) reset is identical across variants.
                    for d in &self.depth {
                        d.store(0, Ordering::Relaxed);
                    }
                    std::hint::black_box(scga::bfs_level_dense(self.blocked, &self.depth, 0).len());
                }
            }
        }
    }

    fn spmv_out(&mut self) -> Vec<f32> {
        self.run(2, 1);
        self.y.clone()
    }
}

/// Times every kernel over both partitions, interleaved: per kernel, one
/// untimed warm-up call per variant, then [`ROUNDS`] paired timing
/// rounds, keeping each variant's minimum. Measuring all of A then all of
/// B is systematically unfair on a throttled shared host (whichever
/// variant runs second absorbs the CPU-quota backoff) — and so is strict
/// A-B alternation, where every B window still follows an A burn. The
/// rounds therefore swap order (A-B, B-A, ...) so residual throttle bias
/// lands on both variants equally, and min-of-rounds drops the windows
/// that paid it.
fn measure_pair(
    naive: &BlockedSubgraph,
    tuned: &BlockedSubgraph,
    iters: usize,
) -> (Measured, Measured) {
    let mut a = VariantState::new(naive);
    let mut b = VariantState::new(tuned);
    let mut sa = [f64::INFINITY; KERNELS.len()];
    let mut sb = [f64::INFINITY; KERNELS.len()];
    for k in 0..KERNELS.len() {
        a.run(k, 1);
        b.run(k, 1);
        for round in 0..ROUNDS {
            if round % 2 == 0 {
                sa[k] = sa[k].min(time_per_iter(iters, |n| a.run(k, n)));
                sb[k] = sb[k].min(time_per_iter(iters, |n| b.run(k, n)));
            } else {
                sb[k] = sb[k].min(time_per_iter(iters, |n| b.run(k, n)));
                sa[k] = sa[k].min(time_per_iter(iters, |n| a.run(k, n)));
            }
        }
    }
    let base = Measured {
        seconds: sa,
        spmv_out: a.spmv_out(),
    };
    let best = Measured {
        seconds: sb,
        spmv_out: b.spmv_out(),
    };
    (base, best)
}

fn main() {
    let opts = BenchOpts::from_args();
    let threads = mixen_pool::current_num_threads();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Scatter/Gather kernel microbenchmarks: naive full-grid walk vs \
         nnz-balanced + skip-list path ({} iterations, {threads} lanes, \
         host parallelism {host})",
        opts.iters
    );
    println!(
        "{:>8} {:>15}  {:>11} {:>11} {:>7}",
        "graph", "kernel", "naive_s", "tuned_s", "ratio"
    );
    let mut graphs_json: Vec<Json> = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); KERNELS.len()];
    let mut all_identical = true;
    for d in &opts.datasets {
        let g = opts.gen(*d);
        // `--reorder` swaps the relabel policy under both variants, so the
        // A/B stays a pure partition-metadata comparison at any ordering.
        let tuned_opts = MixenOpts {
            ordering: opts.ordering_for(&g),
            ..MixenOpts::default()
        };
        let naive_opts = MixenOpts {
            load_balance: false,
            gather_balance: false,
            skip_empty_blocks: false,
            ..tuned_opts
        };
        let filtered = FilteredGraph::with_ordering(&g, tuned_opts.ordering);
        let naive = BlockedSubgraph::new(filtered.reg_csr(), &naive_opts, threads);
        let tuned = BlockedSubgraph::new(filtered.reg_csr(), &tuned_opts, threads);
        let (base, best) = measure_pair(&naive, &tuned, opts.iters);
        let identical = base.spmv_out == best.spmv_out;
        all_identical &= identical;
        let stats = tuned.split_stats();
        let mut kernels_json: Vec<Json> = Vec::new();
        for (k, name) in KERNELS.iter().enumerate() {
            let ratio = base.seconds[k] / best.seconds[k].max(1e-12);
            speedups[k].push(ratio);
            println!(
                "{:>8} {:>15}  {:>11.6} {:>11.6} {:>6.2}x",
                d.name(),
                name,
                base.seconds[k],
                best.seconds[k],
                ratio
            );
            kernels_json.push(Json::Obj(vec![
                ("kernel".into(), Json::Str((*name).into())),
                ("naive_seconds".into(), Json::Num(base.seconds[k])),
                ("tuned_seconds".into(), Json::Num(best.seconds[k])),
                ("speedup".into(), Json::Num(ratio)),
            ]));
        }
        if !identical {
            eprintln!(
                "warning: {}: tuned SpMV output differs from naive — \
                 the scheduling change leaked into the numerics",
                d.name()
            );
        }
        graphs_json.push(Json::Obj(vec![
            ("graph".into(), Json::Str(d.name().into())),
            (
                "ordering".into(),
                Json::Str(tuned_opts.ordering.name().into()),
            ),
            ("n".into(), Json::from_u64(g.n() as u64)),
            ("m".into(), Json::from_u64(g.m() as u64)),
            ("regular_nnz".into(), Json::from_u64(tuned.nnz() as u64)),
            (
                "partition".into(),
                Json::Obj(vec![
                    (
                        "scatter_tasks".into(),
                        Json::from_u64(stats.scatter_tasks as u64),
                    ),
                    (
                        "gather_tasks".into(),
                        Json::from_u64(stats.gather_tasks as u64),
                    ),
                    ("tasks_split".into(), Json::from_u64(stats.tasks_split())),
                    ("max_task_nnz".into(), Json::from_u64(stats.max_task_nnz())),
                ]),
            ),
            ("kernels".into(), Json::Arr(kernels_json)),
            ("identical".into(), Json::Bool(identical)),
        ]));
    }
    print!("{:>8} {:>15}  {:>11} {:>11} ", "geomean", "", "", "");
    for s in &speedups {
        print!("{:>6.2}x ", geomean(s));
    }
    println!();
    println!(
        "\n(ratio = naive seconds / tuned seconds per kernel call; both\n\
         variants run identical kernel code over the same filtered subgraph\n\
         and differ only in partition metadata. Skip lists pay off where\n\
         skew leaves blocks empty; on near-uniform graphs the two paths walk\n\
         the same blocks and the ratio should sit near 1.0.)"
    );
    opts.write_json_sidecar(
        "kernels",
        vec![
            ("threads".into(), Json::from_u64(threads as u64)),
            ("host_parallelism".into(), Json::from_u64(host as u64)),
            ("graphs".into(), Json::Arr(graphs_json)),
        ],
    );
    if !all_identical {
        std::process::exit(1);
    }
}
