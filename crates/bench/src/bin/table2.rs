//! Reproduces **Table 2**: dataset attributes — n, m, skewed/real/directed
//! flags and the α/β ratios the §5 performance model depends on.

use mixen_bench::BenchOpts;
use mixen_graph::StructuralStats;

/// Paper's Table 2 (α, β) for comparison.
const PAPER_AB: [(&str, f64, f64); 8] = [
    ("weibo", 0.01, 0.06),
    ("track", 0.46, 0.60),
    ("wiki", 0.22, 0.78),
    ("pld", 0.56, 0.84),
    ("rmat", 0.26, 0.59),
    ("kron", 0.49, 1.0),
    ("road", 1.0, 1.0),
    ("urand", 1.0, 1.0),
];

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "Table 2: dataset attributes at {:?} scale (paper sizes / {})",
        opts.scale,
        opts.divisor()
    );
    println!(
        "{:>8}  {:>10} {:>12}  {:>6} {:>5} {:>8}  {:>12} {:>12}",
        "graph", "n", "m", "skewed", "real", "directed", "alpha|paper", "beta|paper"
    );
    for d in &opts.datasets {
        let g = opts.gen(*d);
        let s = StructuralStats::of(&g);
        let (_, pa, pb) = PAPER_AB
            .iter()
            .find(|(name, _, _)| *name == d.name())
            .copied()
            .unwrap_or(("", f64::NAN, f64::NAN));
        println!(
            "{:>8}  {:>10} {:>12}  {:>6} {:>5} {:>8}  {:>5.2} |{:>4.2}  {:>5.2} |{:>4.2}",
            d.name(),
            s.n,
            s.m,
            if s.is_skewed() { "Yes" } else { "No" },
            if d.is_real() { "Yes" } else { "No" },
            if d.is_directed() { "Yes" } else { "No" },
            s.alpha,
            pa,
            s.beta,
            pb,
        );
    }
}
