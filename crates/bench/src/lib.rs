//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). They share:
//!
//! * [`BenchOpts`] — command-line options (`--scale tiny|small|medium|large`,
//!   `--seed N`, `--iters N`, `--datasets a,b,c`),
//! * [`timed`] / [`time_per_iter`] — wall-clock measurement helpers,
//! * [`normalize`] — the "normalized to X" transformation the paper's
//!   figures use.
//!
//! All binaries print plain text tables shaped like the paper's, so
//! paper-vs-measured comparisons (EXPERIMENTS.md) are a visual diff.

#![forbid(unsafe_code)]

use std::time::Instant;

use mixen_core::ReorderChoice;
use mixen_graph::{Dataset, Graph, Scale};

/// Command-line options shared by the reproduction binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Dataset scale (default `small`; the paper shape holds from `tiny` up).
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Timed iterations per measurement (the paper uses 100).
    pub iters: usize,
    /// Datasets to run (default: all eight).
    pub datasets: Vec<Dataset>,
    /// Machine-readable sidecar: write the run's results as JSON here, next
    /// to the plain-text table on stdout.
    pub json: Option<String>,
    /// Worker lanes for the parallel kernels (`--threads N`). `None` leaves
    /// the pool at its `MIXEN_THREADS`/host default; `from_args` applies a
    /// given value globally before any kernel runs.
    pub threads: Option<usize>,
    /// Regular-region reordering policy override
    /// (`--reorder auto|original|hubs-first|by-in-degree|dbg|hubsort`).
    /// `None` keeps each binary's own default (usually `MixenOpts::default`).
    pub reorder: Option<ReorderChoice>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 42,
            iters: 10,
            datasets: Dataset::ALL.to_vec(),
            json: None,
            threads: None,
            reorder: None,
        }
    }
}

impl BenchOpts {
    /// Parses `std::env::args`; unknown flags abort with a usage message.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| usage(&format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--scale" => {
                    opts.scale = match value("--scale").as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "medium" => Scale::Medium,
                        "large" => Scale::Large,
                        other => usage(&format!("unknown scale '{other}'")),
                    }
                }
                "--seed" => {
                    opts.seed = value("--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("--seed must be an integer"))
                }
                "--iters" => {
                    opts.iters = value("--iters")
                        .parse()
                        .unwrap_or_else(|_| usage("--iters must be an integer"))
                }
                "--datasets" => {
                    opts.datasets = value("--datasets")
                        .split(',')
                        .map(|name| {
                            Dataset::from_name(name.trim())
                                .unwrap_or_else(|| usage(&format!("unknown dataset '{name}'")))
                        })
                        .collect()
                }
                "--json" => opts.json = Some(value("--json")),
                "--reorder" => {
                    let v = value("--reorder");
                    opts.reorder = Some(ReorderChoice::parse(&v).unwrap_or_else(|| {
                        usage(&format!(
                            "unknown reorder policy '{v}' \
                             (auto|original|hubs-first|by-in-degree|dbg|hubsort)"
                        ))
                    }));
                }
                "--threads" => {
                    let n: usize = value("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage("--threads must be an integer"));
                    if n == 0 {
                        usage("--threads must be at least 1");
                    }
                    opts.threads = Some(n);
                }
                "--affinity" => {
                    let v = value("--affinity");
                    let policy =
                        mixen_pool::affinity::AffinityPolicy::parse(&v).unwrap_or_else(|| {
                            usage(&format!(
                                "bad --affinity '{v}' (off, auto, or a CPU list like 0,2,4)"
                            ))
                        });
                    // Installed immediately — before `--threads` builds the
                    // global pool below — so workers pin at spawn.
                    mixen_pool::affinity::configure(policy);
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        if let Some(n) = opts.threads {
            // Applied before any kernel touches the pool, so the whole run
            // (graph generation included) executes at the requested width.
            if let Err(e) = mixen_pool::configure_global(n) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        opts
    }

    /// Writes a sidecar JSON file when `--json PATH` was given; `body` holds
    /// the bin-specific results and is wrapped with the shared run header
    /// (`scale`, `seed`, `iters`). Aborts with exit code 1 on I/O failure —
    /// a requested-but-missing sidecar must not look like success.
    pub fn write_json_sidecar(&self, bin: &str, body: Vec<(String, mixen_core::Json)>) {
        use mixen_core::Json;
        let Some(path) = &self.json else { return };
        let mut members = vec![
            ("bin".to_string(), Json::Str(bin.to_string())),
            (
                "scale".to_string(),
                Json::Str(format!("{:?}", self.scale).to_lowercase()),
            ),
            ("seed".to_string(), Json::from_u64(self.seed)),
            ("iters".to_string(), Json::from_u64(self.iters as u64)),
        ];
        members.extend(body);
        if let Err(e) = std::fs::write(path, Json::Obj(members).render_pretty()) {
            eprintln!("error: cannot write JSON sidecar '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("[json] wrote {path}");
    }

    /// The divisor of this run's scale (for cache-hierarchy scaling).
    pub fn divisor(&self) -> usize {
        self.scale.divisor()
    }

    /// Resolves the `--reorder` override against a concrete graph: `auto`
    /// asks the §5 performance model, a named policy is used as-is, and no
    /// flag falls back to `MixenOpts::default().ordering` (hubs-first).
    pub fn ordering_for(&self, g: &Graph) -> mixen_core::RegularOrdering {
        match self.reorder {
            Some(choice) => choice.resolve(g),
            None => mixen_core::MixenOpts::default().ordering,
        }
    }

    /// Generates one dataset at this run's scale/seed, reporting progress
    /// on stderr.
    pub fn gen(&self, d: Dataset) -> Graph {
        eprintln!("[gen] {} at {:?} scale ...", d.name(), self.scale);
        let t = Instant::now();
        let g = d.generate(self.scale, self.seed);
        eprintln!(
            "[gen] {}: n = {}, m = {} ({:.2}s)",
            d.name(),
            g.n(),
            g.m(),
            t.elapsed().as_secs_f64()
        );
        g
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|small|medium|large] [--seed N] [--iters N] \
         [--datasets weibo,track,...] [--json out.json] [--threads N] \
         [--affinity off|auto|0,2,4] \
         [--reorder auto|original|hubs-first|by-in-degree|dbg|hubsort]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 })
}

/// Wall-clock of one call.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

/// Average seconds per iteration of a workload run `iters` times by `f`
/// (which receives the iteration count, runs them all, and returns).
pub fn time_per_iter(iters: usize, f: impl FnOnce(usize)) -> f64 {
    let t = Instant::now();
    f(iters);
    t.elapsed().as_secs_f64() / iters.max(1) as f64
}

/// Normalizes a series to its first element (the paper's figures normalize
/// to Mixen or to the best configuration).
pub fn normalize(series: &[f64]) -> Vec<f64> {
    let base = series.first().copied().unwrap_or(1.0).max(1e-12);
    series.iter().map(|&x| x / base).collect()
}

/// Geometric mean of positive values (the cross-graph speedup summary).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_to_first() {
        assert_eq!(normalize(&[2.0, 4.0, 1.0]), vec![1.0, 2.0, 0.5]);
        assert!(normalize(&[]).is_empty());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn timers_return_positive() {
        let (_, secs) = timed(|| std::hint::black_box(1 + 1));
        assert!(secs >= 0.0);
        let per = time_per_iter(4, |n| {
            for _ in 0..n {
                std::hint::black_box(0);
            }
        });
        assert!(per >= 0.0);
    }

    #[test]
    fn default_opts_cover_all_datasets() {
        let o = BenchOpts::default();
        assert_eq!(o.datasets.len(), 8);
        assert_eq!(o.divisor(), 256);
        assert!(o.reorder.is_none());
    }

    #[test]
    fn ordering_falls_back_to_the_engine_default() {
        use mixen_core::{MixenOpts, RegularOrdering};
        let g = Graph::from_pairs(3, &[(0, 1), (1, 0), (2, 0)]);
        let o = BenchOpts::default();
        assert_eq!(o.ordering_for(&g), MixenOpts::default().ordering);
        let fixed = BenchOpts {
            reorder: Some(ReorderChoice::Fixed(RegularOrdering::Dbg)),
            ..BenchOpts::default()
        };
        assert_eq!(fixed.ordering_for(&g), RegularOrdering::Dbg);
    }
}
