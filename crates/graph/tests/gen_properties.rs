//! Property-based tests of the dataset generators: arbitrary valid
//! parameters must produce structurally valid graphs whose realized classes
//! match the requested profile.

use mixen_graph::gen::{generate_profile, ProfileSpec};
use mixen_graph::{gen, Classification, NodeClass, StructuralStats};
use proptest::prelude::*;

/// Arbitrary class mix: four non-negative weights normalized to 1.
fn arb_fractions() -> impl Strategy<Value = [f64; 4]> {
    (1u32..100, 0u32..100, 0u32..100, 0u32..100).prop_map(|(a, b, c, d)| {
        let total = (a + b + c + d) as f64;
        [
            a as f64 / total,
            b as f64 / total,
            c as f64 / total,
            d as f64 / total,
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn profile_generator_respects_any_valid_spec(
        fracs in arb_fractions(),
        n in 200usize..2000,
        avg_degree in 1.0f64..12.0,
        beta in 0.0f64..1.0,
        in_skew in 0.0f64..1.3,
        seed in 0u64..1000,
    ) {
        let spec = ProfileSpec {
            n,
            avg_degree,
            frac_regular: fracs[0],
            frac_seed: fracs[1],
            frac_sink: fracs[2],
            frac_isolated: fracs[3],
            beta,
            in_skew,
            out_skew: 0.5,
            seed,
        };
        let g = generate_profile(&spec);
        prop_assert_eq!(g.n(), n);
        g.validate().unwrap();
        let c = Classification::of(&g);
        // Realized class fractions within 5 points of the request.
        let targets = [fracs[0], fracs[1], fracs[2], fracs[3]];
        for (class, &target) in NodeClass::ALL.iter().zip(&targets) {
            let realized = c.count(*class) as f64 / n as f64;
            prop_assert!(
                (realized - target).abs() < 0.05,
                "{:?}: realized {} vs target {}",
                class, realized, target
            );
        }
        // No self loops survive.
        prop_assert_eq!(g.edges().filter(|&(s, d)| s == d).count(), 0);
    }

    #[test]
    fn rmat_always_valid(scale in 4u32..11, ef in 1usize..16, seed in 0u64..100) {
        let g = gen::rmat(scale, ef, gen::RmatParams::default(), seed);
        g.validate().unwrap();
        prop_assert_eq!(g.n(), 1usize << scale);
        prop_assert!(g.m() <= (1usize << scale) * ef);
    }

    #[test]
    fn kron_always_symmetric(scale in 4u32..10, seed in 0u64..100) {
        let g = gen::kronecker(scale, 8, seed);
        g.validate().unwrap();
        prop_assert!(g.is_symmetric());
        let s = StructuralStats::of(&g);
        prop_assert!(s.frac_seed == 0.0 && s.frac_sink == 0.0);
    }

    #[test]
    fn road_always_connected_and_regular(
        w in 3usize..40,
        h in 3usize..40,
        keep in 0.0f64..0.5,
        seed in 0u64..50,
    ) {
        let g = gen::road(w, h, keep, seed);
        g.validate().unwrap();
        let comps = mixen_graph::weakly_connected_components(&g);
        prop_assert_eq!(comps.count, 1);
        let c = Classification::of(&g);
        prop_assert_eq!(c.count(NodeClass::Regular), g.n());
    }

    #[test]
    fn uniform_always_all_regular(n in 10usize..500, deg in 2usize..20, seed in 0u64..50) {
        let g = gen::uniform(n, deg, seed);
        g.validate().unwrap();
        let c = Classification::of(&g);
        prop_assert_eq!(c.count(NodeClass::Regular), n);
        prop_assert!(g.is_symmetric());
    }
}
