//! Connectivity classification (§2.1 of the paper).
//!
//! Nodes are split into four classes by the presence of incoming/outgoing
//! links, and *hubs* are the nodes whose in-degree exceeds the average degree
//! of the whole graph. Both facts drive Mixen's filtering step (§4.1): the
//! class determines where a node lands in the relabeled ID space, and hubs
//! are additionally moved to the front of the regular range.

use crate::nid;
use rayon::prelude::*;

use crate::{Graph, NodeId};

/// Connectivity class of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Both incoming and outgoing links.
    Regular = 0,
    /// Only outgoing links (conventionally "source"; the paper uses "seed").
    Seed = 1,
    /// Only incoming links.
    Sink = 2,
    /// No links at all.
    Isolated = 3,
}

impl NodeClass {
    /// All classes in Mixen's relabeling order.
    pub const ALL: [NodeClass; 4] = [
        NodeClass::Regular,
        NodeClass::Seed,
        NodeClass::Sink,
        NodeClass::Isolated,
    ];

    /// Derives the class from a node's degrees.
    #[inline]
    pub fn from_degrees(in_deg: usize, out_deg: usize) -> Self {
        match (in_deg > 0, out_deg > 0) {
            (true, true) => NodeClass::Regular,
            (false, true) => NodeClass::Seed,
            (true, false) => NodeClass::Sink,
            (false, false) => NodeClass::Isolated,
        }
    }
}

/// The outcome of classifying every node of a graph.
#[derive(Clone, Debug)]
pub struct Classification {
    classes: Vec<NodeClass>,
    hubs: Vec<bool>,
    counts: [usize; 4],
    hub_count: usize,
    hub_in_edges: usize,
    avg_degree: f64,
}

impl Classification {
    /// Classifies all nodes of `g` in one parallel scan and detects hubs
    /// (in-degree strictly greater than the graph's average degree, per the
    /// paper's definition in §2.1).
    pub fn of(g: &Graph) -> Self {
        let avg = g.avg_degree();
        let per_node: Vec<(NodeClass, bool, usize)> = (0..nid(g.n()))
            .into_par_iter()
            .map(|u| {
                let ind = g.in_degree(u);
                let outd = g.out_degree(u);
                let class = NodeClass::from_degrees(ind, outd);
                let hub = (ind as f64) > avg;
                (class, hub, if hub { ind } else { 0 })
            })
            .collect();
        let mut counts = [0usize; 4];
        let mut hub_count = 0usize;
        let mut hub_in_edges = 0usize;
        let mut classes = Vec::with_capacity(g.n());
        let mut hubs = Vec::with_capacity(g.n());
        for (class, hub, hub_edges) in per_node {
            counts[class as usize] += 1;
            hub_count += hub as usize;
            hub_in_edges += hub_edges;
            classes.push(class);
            hubs.push(hub);
        }
        Self {
            classes,
            hubs,
            counts,
            hub_count,
            hub_in_edges,
            avg_degree: avg,
        }
    }

    /// The class of node `u`.
    #[inline]
    pub fn class(&self, u: NodeId) -> NodeClass {
        self.classes[u as usize]
    }

    /// Whether node `u` is a hub (in-degree > average degree).
    #[inline]
    pub fn is_hub(&self, u: NodeId) -> bool {
        self.hubs[u as usize]
    }

    /// Per-class node counts, indexed by `NodeClass as usize`.
    pub fn counts(&self) -> [usize; 4] {
        self.counts
    }

    /// Number of nodes in a class.
    pub fn count(&self, class: NodeClass) -> usize {
        self.counts[class as usize]
    }

    /// Number of hubs.
    pub fn hub_count(&self) -> usize {
        self.hub_count
    }

    /// Total in-degree of all hubs (the paper's `E_hub` numerator).
    pub fn hub_in_edges(&self) -> usize {
        self.hub_in_edges
    }

    /// The average degree used as the hub threshold.
    pub fn avg_degree(&self) -> f64 {
        self.avg_degree
    }

    /// Number of nodes classified.
    pub fn n(&self) -> usize {
        self.classes.len()
    }

    /// Slice of all classes.
    pub fn classes(&self) -> &[NodeClass] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn from_degrees_truth_table() {
        assert_eq!(NodeClass::from_degrees(1, 1), NodeClass::Regular);
        assert_eq!(NodeClass::from_degrees(0, 3), NodeClass::Seed);
        assert_eq!(NodeClass::from_degrees(2, 0), NodeClass::Sink);
        assert_eq!(NodeClass::from_degrees(0, 0), NodeClass::Isolated);
    }

    #[test]
    fn classify_small_graph() {
        // 0: seed (out only), 1: regular, 2: sink (in only), 3: isolated.
        let g = Graph::from_pairs(4, &[(0, 1), (1, 2), (0, 2)]);
        let c = Classification::of(&g);
        assert_eq!(c.class(0), NodeClass::Seed);
        assert_eq!(c.class(1), NodeClass::Regular);
        assert_eq!(c.class(2), NodeClass::Sink);
        assert_eq!(c.class(3), NodeClass::Isolated);
        assert_eq!(c.counts(), [1, 1, 1, 1]);
    }

    #[test]
    fn counts_partition_n() {
        let g = Graph::from_pairs(6, &[(0, 1), (1, 0), (2, 3), (4, 3)]);
        let c = Classification::of(&g);
        assert_eq!(c.counts().iter().sum::<usize>(), g.n());
    }

    #[test]
    fn hub_threshold_is_strict_average() {
        // n=4, m=4 => avg degree 1. Node 1 has in-degree 3 (> 1): hub.
        // Node 2 has in-degree 1 (== 1): not a hub.
        let g = Graph::from_pairs(4, &[(0, 1), (2, 1), (3, 1), (1, 2)]);
        let c = Classification::of(&g);
        assert!(c.is_hub(1));
        assert!(!c.is_hub(2));
        assert_eq!(c.hub_count(), 1);
        assert_eq!(c.hub_in_edges(), 3);
    }

    #[test]
    fn empty_graph_classifies() {
        let g = Graph::from_pairs(0, &[]);
        let c = Classification::of(&g);
        assert_eq!(c.n(), 0);
        assert_eq!(c.counts(), [0, 0, 0, 0]);
    }

    #[test]
    fn self_loop_makes_regular() {
        let g = Graph::from_pairs(2, &[(0, 0)]);
        let c = Classification::of(&g);
        assert_eq!(c.class(0), NodeClass::Regular);
        assert_eq!(c.class(1), NodeClass::Isolated);
    }
}
