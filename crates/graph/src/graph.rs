//! The directed graph type shared by every engine.
//!
//! A [`Graph`] owns both the out-edge CSR and the in-edge CSC (stored as the
//! CSR of the transpose), mirroring the paper's assumption (§6.5) that
//! frameworks ingest a prebuilt CSR binary. Keeping both directions around is
//! what lets Mixen extract its mixed CSR/CSC representation without a format
//! conversion (§4.1).

use crate::nid;
use crate::{Csr, EdgeList, GraphError, NodeId};

/// A directed graph with `n` nodes, holding out- and in-adjacency.
#[derive(Clone, Debug)]
pub struct Graph {
    out: Csr,
    inn: Csr,
}

impl Graph {
    /// Builds a graph from an edge list (the CSC is derived by transposition).
    pub fn from_edge_list(edges: &EdgeList) -> Self {
        let out = Csr::from_edges(edges.n(), edges.pairs());
        let inn = out.transpose();
        Self { out, inn }
    }

    /// Builds directly from pairs without normalization.
    pub fn from_pairs(n: usize, pairs: &[(NodeId, NodeId)]) -> Self {
        let out = Csr::from_edges(n, pairs);
        let inn = out.transpose();
        Self { out, inn }
    }

    /// Wraps an existing out-CSR (the in-CSC is derived).
    pub fn from_csr(out: Csr) -> Self {
        assert_eq!(out.n_rows(), out.n_cols(), "adjacency must be square");
        let inn = out.transpose();
        Self { out, inn }
    }

    /// Wraps both directions. Panics if they are not transposes of each
    /// other in debug builds (cheap cardinality checks always run).
    pub fn from_parts(out: Csr, inn: Csr) -> Self {
        assert_eq!(out.n_rows(), inn.n_rows());
        assert_eq!(out.nnz(), inn.nnz());
        debug_assert_eq!(inn, out.transpose(), "inn must be the transpose of out");
        Self { out, inn }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.out.n_rows()
    }

    /// Number of directed edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.out.nnz()
    }

    /// Average degree `m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.m() as f64 / self.n() as f64
        }
    }

    /// Out-edge CSR.
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// In-edge CSC (CSR of the transpose).
    #[inline]
    pub fn in_csc(&self) -> &Csr {
        &self.inn
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out.degree(u)
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.inn.degree(u)
    }

    /// Out-neighbours of `u` (sorted).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.out.neighbors(u)
    }

    /// In-neighbours of `u` (sorted).
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.inn.neighbors(u)
    }

    /// Iterates all edges in row-major order of the out-CSR.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out.edges()
    }

    /// Heap bytes of both adjacency structures (the CSR + CSC a
    /// conventional framework keeps resident).
    pub fn memory_bytes(&self) -> usize {
        self.out.memory_bytes() + self.inn.memory_bytes()
    }

    /// The reverse graph: every edge `u -> v` becomes `v -> u`. Cheap — the
    /// two internal CSRs just swap roles. Used by algorithms that propagate
    /// in both directions (HITS, SALSA).
    pub fn reversed(&self) -> Graph {
        Graph {
            out: self.inn.clone(),
            inn: self.out.clone(),
        }
    }

    /// True when for every `u -> v` the edge `v -> u` is also present.
    pub fn is_symmetric(&self) -> bool {
        (0..nid(self.n())).all(|u| self.out.neighbors(u) == self.inn.neighbors(u))
    }

    /// Structural validation of both directions.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.out.validate()?;
        self.inn.validate()?;
        if self.out.nnz() != self.inn.nnz() {
            return Err(GraphError::Invariant("out/in edge counts differ".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_pairs(5, &[(0, 1), (0, 2), (1, 2), (3, 0), (2, 4)])
    }

    #[test]
    fn degrees_are_consistent() {
        let g = toy();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(3), 0);
        let out_sum: usize = (0..5).map(|u| g.out_degree(u)).sum();
        let in_sum: usize = (0..5).map(|u| g.in_degree(u)).sum();
        assert_eq!(out_sum, g.m());
        assert_eq!(in_sum, g.m());
    }

    #[test]
    fn in_neighbors_match_transposed_edges() {
        let g = toy();
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.out_neighbors(3), &[0]);
    }

    #[test]
    fn symmetric_detection() {
        let g = toy();
        assert!(!g.is_symmetric());
        let mut e = EdgeList::from_pairs(3, vec![(0, 1), (1, 2)]);
        e.symmetrize();
        let s = Graph::from_edge_list(&e);
        assert!(s.is_symmetric());
    }

    #[test]
    fn validate_ok() {
        toy().validate().unwrap();
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = toy();
        let r = g.reversed();
        assert_eq!(r.out_neighbors(2), g.in_neighbors(2));
        assert_eq!(r.in_neighbors(0), g.out_neighbors(0));
        assert_eq!(r.m(), g.m());
        let rr = r.reversed();
        assert_eq!(rr.out_csr(), g.out_csr());
    }

    #[test]
    fn avg_degree_empty() {
        let g = Graph::from_pairs(0, &[]);
        assert_eq!(g.avg_degree(), 0.0);
    }
}
