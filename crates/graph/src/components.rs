//! Weakly-connected components via union-find.
//!
//! Dataset validation uses this: the crawled graphs the paper uses are
//! dominated by one giant component, the road network must be fully
//! connected (otherwise BFS comparisons are meaningless), and R-MAT's
//! isolated nodes show up as singleton components.

use crate::nid;
use crate::Graph;

/// Union-find with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singletons.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..nid(n)).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    pub fn count(&self) -> usize {
        self.components
    }

    /// Size of `x`'s set.
    pub fn size_of(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Result of a weakly-connected-components run.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component label per node (the representative's ID).
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of the largest component.
    pub largest: usize,
}

impl Components {
    /// Fraction of nodes inside the largest component.
    pub fn largest_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.largest as f64 / self.labels.len() as f64
        }
    }
}

/// Computes weakly-connected components (directions ignored).
pub fn weakly_connected_components(g: &Graph) -> Components {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let labels: Vec<u32> = (0..nid(g.n())).map(|v| uf.find(v)).collect();
    let count = uf.count();
    let largest = (0..nid(g.n())).map(|v| uf.size_of(v)).max().unwrap_or(0);
    Components {
        labels,
        count,
        largest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn two_components_plus_singleton() {
        let g = Graph::from_pairs(5, &[(0, 1), (1, 0), (2, 3)]);
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 3); // {0,1}, {2,3}, {4}
        assert_eq!(c.largest, 2);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[2], c.labels[3]);
        assert_ne!(c.labels[0], c.labels[2]);
    }

    #[test]
    fn direction_is_ignored() {
        // A directed chain is weakly connected.
        let g = Graph::from_pairs(4, &[(0, 1), (2, 1), (2, 3)]);
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.largest_fraction(), 1.0);
    }

    #[test]
    fn union_find_counts() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.count(), 1);
        assert_eq!(uf.size_of(2), 4);
    }

    #[test]
    fn road_dataset_is_connected() {
        use crate::{Dataset, Scale};
        let g = Dataset::Road.generate(Scale::Tiny, 3);
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 1, "road backbone must connect everything");
    }

    #[test]
    fn rmat_isolated_nodes_are_singletons() {
        use crate::{Classification, Dataset, NodeClass, Scale};
        let g = Dataset::Rmat.generate(Scale::Tiny, 4);
        let cls = Classification::of(&g);
        let c = weakly_connected_components(&g);
        assert!(c.count > cls.count(NodeClass::Isolated));
        assert!(c.largest_fraction() > 0.5, "giant component expected");
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_pairs(0, &[]);
        let c = weakly_connected_components(&g);
        assert_eq!(c.count, 0);
        assert_eq!(c.largest_fraction(), 0.0);
    }
}
