//! Compressed sparse row storage.
//!
//! A [`Csr`] stores, for each of `n` rows, a sorted run of column indices.
//! Interpreted as a graph it is the out-adjacency of a directed graph; the
//! CSC of the same graph is the [`Csr`] of its transpose (see
//! [`Csr::transpose`]). Construction and transposition are parallelized with
//! rayon: degree counting uses per-chunk histograms, placement uses atomic
//! cursors, and per-row sorting is embarrassingly parallel.

use crate::nid;
use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

use crate::error::GraphError;
use crate::NodeId;

/// Compressed sparse row adjacency structure.
///
/// Invariants (checked by [`Csr::validate`] and the test suite):
/// * `ptr.len() == n + 1`, `ptr[0] == 0`, `ptr[n] == idx.len()`,
/// * `ptr` is non-decreasing,
/// * every entry of `idx` is `< n_cols`,
/// * each row's slice of `idx` is sorted ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    ptr: Box<[usize]>,
    idx: Box<[NodeId]>,
}

impl Csr {
    /// Builds a CSR from an unsorted edge slice. Duplicate edges are kept;
    /// use [`crate::EdgeList`] to deduplicate first if a simple graph is
    /// required. Row/column counts are both `n` (square adjacency).
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        Self::from_edges_rect(n, n, edges)
    }

    /// Builds a rectangular CSR (`n_rows x n_cols`) from an edge slice.
    pub fn from_edges_rect(n_rows: usize, n_cols: usize, edges: &[(NodeId, NodeId)]) -> Self {
        debug_assert!(
            edges
                .iter()
                .all(|&(s, d)| (s as usize) < n_rows && (d as usize) < n_cols),
            "edge endpoint out of range"
        );
        let ptr = prefix_sum(&count_rows(n_rows, edges.par_iter().map(|&(s, _)| s)));
        let mut idx = vec![0 as NodeId; edges.len()].into_boxed_slice();
        let cursors: Vec<AtomicUsize> = ptr[..n_rows]
            .par_iter()
            .map(|&p| AtomicUsize::new(p))
            .collect();
        {
            // SAFETY-free parallel placement: each edge reserves a distinct
            // slot via its row cursor; slots never overlap because cursors
            // start at row offsets and each row's reservation count equals
            // its degree.
            let idx_cell = SliceWriter::new(&mut idx);
            edges.par_iter().for_each(|&(s, d)| {
                // ordering: the cursor only reserves a unique slot; the
                // written values are published by the rayon join below.
                let slot = cursors[s as usize].fetch_add(1, Ordering::Relaxed);
                idx_cell.write(slot, d);
            });
        }
        let mut csr = Self {
            n_rows,
            n_cols,
            ptr: ptr.into_boxed_slice(),
            idx,
        };
        csr.sort_rows();
        csr
    }

    /// Builds a CSR by asking `row` to emit the neighbours of each row into a
    /// scratch vector (parallel over rows). Rows are sorted automatically.
    /// This is how Mixen extracts its sub-CSRs directly from an existing
    /// graph without a format conversion.
    pub fn from_row_fn<F>(n_rows: usize, n_cols: usize, row: F) -> Self
    where
        F: Fn(NodeId, &mut Vec<NodeId>) + Sync,
    {
        let rows: Vec<Vec<NodeId>> = (0..nid(n_rows))
            .into_par_iter()
            .map(|u| {
                let mut scratch = Vec::new();
                row(u, &mut scratch);
                scratch.sort_unstable();
                debug_assert!(scratch.iter().all(|&v| (v as usize) < n_cols));
                scratch
            })
            .collect();
        let mut ptr = Vec::with_capacity(n_rows + 1);
        ptr.push(0usize);
        let mut acc = 0usize;
        for r in &rows {
            acc += r.len();
            ptr.push(acc);
        }
        let mut idx = Vec::with_capacity(acc);
        for r in rows {
            idx.extend_from_slice(&r);
        }
        Self {
            n_rows,
            n_cols,
            ptr: ptr.into_boxed_slice(),
            idx: idx.into_boxed_slice(),
        }
    }

    /// Assembles a CSR from raw parts, checking every structural invariant
    /// (monotone `ptr`, `ptr[0] == 0`, `ptr[n] == idx.len()`, in-range and
    /// row-sorted `idx`). This is the entry point for untrusted data.
    pub fn try_from_parts(
        n_cols: usize,
        ptr: Vec<usize>,
        idx: Vec<NodeId>,
    ) -> Result<Self, GraphError> {
        let csr = Self {
            n_rows: ptr.len().saturating_sub(1),
            n_cols,
            ptr: ptr.into_boxed_slice(),
            idx: idx.into_boxed_slice(),
        };
        csr.validate()?;
        Ok(csr)
    }

    /// Assembles a CSR from raw parts. Panics if the invariants do not hold;
    /// use [`Csr::try_from_parts`] for untrusted data.
    pub fn from_parts(n_cols: usize, ptr: Vec<usize>, idx: Vec<NodeId>) -> Self {
        // lint: allow(panic) reason=documented panicking constructor for trusted inputs
        Self::try_from_parts(n_cols, ptr, idx).expect("invalid CSR parts")
    }

    /// An empty square CSR over `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            ptr: vec![0; n + 1].into_boxed_slice(),
            idx: Box::new([]),
        }
    }

    /// Number of rows (source nodes).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (destination nodes).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries (edges).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Degree of row `u` (out-degree when this CSR stores out-edges).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.ptr[u as usize + 1] - self.ptr[u as usize]
    }

    /// The sorted neighbours of row `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.idx[self.ptr[u as usize]..self.ptr[u as usize + 1]]
    }

    /// The row-pointer array (`n_rows + 1` entries).
    #[inline]
    pub fn ptr(&self) -> &[usize] {
        &self.ptr
    }

    /// The concatenated column-index array.
    #[inline]
    pub fn idx(&self) -> &[NodeId] {
        &self.idx
    }

    /// Heap bytes used by the pointer and index arrays.
    pub fn memory_bytes(&self) -> usize {
        self.ptr.len() * std::mem::size_of::<usize>()
            + self.idx.len() * std::mem::size_of::<NodeId>()
    }

    /// Iterates all `(row, col)` entries in row-major order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..nid(self.n_rows)).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Transposes the matrix in parallel: counting pass, prefix sum, atomic
    /// scatter, then per-row sort. The result's rows are the columns of
    /// `self`.
    pub fn transpose(&self) -> Self {
        let ptr = prefix_sum(&count_rows(self.n_cols, self.idx.par_iter().copied()));
        let mut idx = vec![0 as NodeId; self.nnz()].into_boxed_slice();
        let cursors: Vec<AtomicUsize> = ptr[..self.n_cols]
            .par_iter()
            .map(|&p| AtomicUsize::new(p))
            .collect();
        {
            let idx_cell = SliceWriter::new(&mut idx);
            (0..self.n_rows).into_par_iter().for_each(|u| {
                for &v in &self.idx[self.ptr[u]..self.ptr[u + 1]] {
                    // ordering: slot reservation only, as in from_edges_rect.
                    let slot = cursors[v as usize].fetch_add(1, Ordering::Relaxed);
                    idx_cell.write(slot, nid(u));
                }
            });
        }
        let mut t = Self {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            ptr: ptr.into_boxed_slice(),
            idx,
        };
        t.sort_rows();
        t
    }

    /// Checks every structural invariant; reports the first violation as a
    /// [`GraphError::Invariant`].
    pub fn validate(&self) -> Result<(), GraphError> {
        let invariant = |msg: String| Err(GraphError::Invariant(msg));
        if self.ptr.len() != self.n_rows + 1 {
            return invariant(format!(
                "ptr length {} != n_rows + 1 = {}",
                self.ptr.len(),
                self.n_rows + 1
            ));
        }
        if self.ptr[0] != 0 {
            return invariant("ptr[0] != 0".into());
        }
        if self.ptr[self.n_rows] != self.idx.len() {
            return invariant(format!(
                "ptr[n] = {} != nnz = {}",
                self.ptr[self.n_rows],
                self.idx.len()
            ));
        }
        for w in self.ptr.windows(2) {
            if w[0] > w[1] {
                return invariant("ptr not monotone".into());
            }
        }
        if let Some(&bad) = self.idx.iter().find(|&&v| v as usize >= self.n_cols) {
            return invariant(format!("column index {bad} out of range {}", self.n_cols));
        }
        for u in 0..self.n_rows {
            let row = &self.idx[self.ptr[u]..self.ptr[u + 1]];
            if row.windows(2).any(|w| w[0] > w[1]) {
                return invariant(format!("row {u} not sorted"));
            }
        }
        Ok(())
    }

    fn sort_rows(&mut self) {
        let ptr = std::mem::take(&mut self.ptr);
        let idx = &mut self.idx;
        // Split the index array into per-row slices and sort each
        // independently. `par_chunk_by_rows` is awkward with raw splits, so
        // use unsafe-free split_at_mut recursion via rayon over the rows'
        // disjoint ranges, materialized through a SliceWriter-style scheme:
        // simplest is sequential splitting into a Vec of &mut [NodeId].
        let mut rows: Vec<&mut [NodeId]> = Vec::with_capacity(self.n_rows);
        let mut rest: &mut [NodeId] = idx;
        let mut prev = 0usize;
        for &p in ptr[1..].iter() {
            let (row, tail) = rest.split_at_mut(p - prev);
            rows.push(row);
            rest = tail;
            prev = p;
        }
        rows.par_iter_mut().for_each(|row| row.sort_unstable());
        self.ptr = ptr;
    }
}

/// Shared writable view of a slice used for disjoint-slot parallel writes.
///
/// Every writer must target a distinct index; the constructors in this module
/// guarantee that by reserving slots through atomic cursors.
///
/// Under `debug_assertions` or the `race-detector` feature, a shadow
/// ownership map records every written slot and the writer panics on an
/// overlapping or double write — turning a silent data race into a loud,
/// attributable failure.
pub(crate) struct SliceWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    /// Shadow ownership map, routed through [`crate::msync`] so
    /// `model-check` builds explore the claim protocol itself.
    #[cfg(any(debug_assertions, feature = "race-detector"))]
    claimed: Box<[crate::msync::atomic::AtomicU8]>,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: SliceWriter is a raw-pointer view of a `&mut [T]` whose lifetime it
// captures, so the underlying buffer outlives it; sending it to another
// thread moves only the pointer and is safe whenever `T: Send` (the values
// written cross threads).
unsafe impl<T: Send> Send for SliceWriter<'_, T> {}
// SAFETY: sharing `&SliceWriter` across threads is safe because the only
// mutation path is `write`, which bounds-checks and requires callers to
// reserve distinct slots through atomic cursors — concurrent writes never
// alias, and no method reads the buffer.
unsafe impl<T: Send> Sync for SliceWriter<'_, T> {}

impl<'a, T> SliceWriter<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            #[cfg(any(debug_assertions, feature = "race-detector"))]
            claimed: (0..slice.len())
                .map(|_| crate::msync::atomic::AtomicU8::new(0))
                .collect(),
            _marker: std::marker::PhantomData,
        }
    }

    #[inline]
    pub(crate) fn write(&self, i: usize, value: T) {
        assert!(i < self.len);
        #[cfg(any(debug_assertions, feature = "race-detector"))]
        // ordering: the claim byte is a diagnostic tripwire — the buffer
        // itself is published by the construction's rayon join, so the swap
        // needs only same-location atomicity to expose a double write.
        if self.claimed[i].swap(1, Ordering::Relaxed) != 0 {
            // lint: allow(panic) reason=race detector turning a violated disjoint-write contract into a diagnosable failure
            panic!("SliceWriter race detected: slot {i} written more than once");
        }
        // SAFETY: `i < len` is checked above, and callers reserve distinct
        // slots via atomic fetch_add so no two threads write the same index.
        unsafe { self.ptr.add(i).write(value) }
    }
}

/// Parallel degree count: per-chunk local histograms folded into one.
fn count_rows(n: usize, rows: impl IndexedParallelIterator<Item = NodeId>) -> Vec<usize> {
    rows.fold(
        || vec![0usize; n],
        |mut hist, r| {
            hist[r as usize] += 1;
            hist
        },
    )
    .reduce(
        || vec![0usize; n],
        |mut a, b| {
            a.iter_mut().zip(b).for_each(|(x, y)| *x += y);
            a
        },
    )
}

/// Exclusive prefix sum producing a `len + 1` pointer array.
pub fn prefix_sum(counts: &[usize]) -> Vec<usize> {
    let mut ptr = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    ptr.push(0);
    for &c in counts {
        acc += c;
        ptr.push(acc);
    }
    ptr
}

/// Model probes over the CSR construction write path, compiled only under
/// `model-check`.
#[cfg(feature = "model-check")]
pub mod mc {
    use super::SliceWriter;

    /// A leaked [`SliceWriter`] over a small `u32` buffer, exposing the
    /// disjoint-slot write contract to `mixen-check` model tests:
    /// concurrent model threads race `try_write` on the same slot and the
    /// checker proves the shadow map catches every overlap under every
    /// schedule.
    #[derive(Clone, Copy)]
    pub struct SliceWriterProbe {
        writer: &'static SliceWriter<'static, u32>,
    }

    impl SliceWriterProbe {
        /// Builds a probe over a fresh leaked `len`-slot buffer (leaking
        /// keeps the probe `'static` and trivially shareable across model
        /// threads; model tests are short-lived processes).
        pub fn new(len: usize) -> Self {
            let buf: &'static mut [u32] = Vec::leak(vec![0; len]);
            let writer = Box::leak(Box::new(SliceWriter::new(buf)));
            SliceWriterProbe { writer }
        }

        /// Writes `value` into `slot` exactly as a construction task would.
        /// Returns `true` when this writer legitimately owned the slot and
        /// `false` when the race detector caught an overlapping write.
        pub fn try_write(&self, slot: usize, value: u32) -> bool {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.writer.write(slot, value);
            }))
            .is_ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The race detector must catch an intentionally overlapping write.
    #[test]
    #[cfg(any(debug_assertions, feature = "race-detector"))]
    #[should_panic(expected = "SliceWriter race detected")]
    fn race_detector_catches_double_write() {
        let mut buf = vec![0u32; 8];
        let w = SliceWriter::new(&mut buf);
        w.write(3, 1);
        w.write(3, 2); // same slot twice — a violated disjoint-write contract
    }

    /// Seeded stress: thousands of concurrent disjoint writes through the
    /// shadow map must neither panic nor lose a value.
    #[test]
    fn race_detector_stress_disjoint_writes_are_clean() {
        use rand::prelude::*;
        let n = 1 << 14;
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut buf = vec![u32::MAX; n];
        {
            let w = SliceWriter::new(&mut buf);
            let cursor = AtomicUsize::new(0);
            (0..n).into_par_iter().for_each(|_| {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let slot = order[k];
                w.write(slot, nid(slot).wrapping_mul(2654435761));
            });
        }
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, nid(i).wrapping_mul(2654435761));
        }
    }

    fn toy() -> Csr {
        // 0 -> 1, 0 -> 2, 2 -> 0, 3 -> 3 (self loop), plus node 1 with no out.
        Csr::from_edges(4, &[(3, 3), (0, 2), (2, 0), (0, 1)])
    }

    #[test]
    fn builds_sorted_rows() {
        let c = toy();
        assert_eq!(c.n_rows(), 4);
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(1), &[] as &[NodeId]);
        assert_eq!(c.neighbors(2), &[0]);
        assert_eq!(c.neighbors(3), &[3]);
        c.validate().unwrap();
    }

    #[test]
    fn degree_matches_row_len() {
        let c = toy();
        for u in 0..4u32 {
            assert_eq!(c.degree(u), c.neighbors(u).len());
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let c = toy();
        let t = c.transpose();
        t.validate().unwrap();
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0]);
        assert_eq!(t.neighbors(3), &[3]);
        let back = t.transpose();
        assert_eq!(back, c);
    }

    #[test]
    fn transpose_preserves_edge_multiset() {
        let edges = vec![(0, 1), (0, 1), (1, 0), (2, 2)];
        let c = Csr::from_edges(3, &edges);
        let t = c.transpose();
        let mut fwd: Vec<_> = c.edges().collect();
        let mut rev: Vec<_> = t.edges().map(|(a, b)| (b, a)).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn empty_graph() {
        let c = Csr::empty(0);
        c.validate().unwrap();
        assert_eq!(c.nnz(), 0);
        let t = c.transpose();
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn rectangular_build_and_transpose() {
        let c = Csr::from_edges_rect(2, 5, &[(0, 4), (1, 3), (0, 0)]);
        assert_eq!(c.n_rows(), 2);
        assert_eq!(c.n_cols(), 5);
        let t = c.transpose();
        assert_eq!(t.n_rows(), 5);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.neighbors(4), &[0]);
    }

    #[test]
    fn prefix_sum_basics() {
        assert_eq!(prefix_sum(&[]), vec![0]);
        assert_eq!(prefix_sum(&[2, 0, 3]), vec![0, 2, 2, 5]);
    }

    #[test]
    fn from_row_fn_matches_from_edges() {
        let edges = vec![(0u32, 2u32), (0, 1), (2, 0), (1, 1)];
        let a = Csr::from_edges(3, &edges);
        let b = Csr::from_row_fn(3, 3, |u, out| {
            out.extend(edges.iter().filter(|&&(s, _)| s == u).map(|&(_, d)| d));
        });
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_validates() {
        let c = Csr::from_parts(3, vec![0, 1, 1, 2], vec![2, 0]);
        assert_eq!(c.neighbors(0), &[2]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR parts")]
    fn from_parts_rejects_bad_ptr() {
        let _ = Csr::from_parts(3, vec![0, 2, 1, 2], vec![2, 0]);
    }

    #[test]
    fn large_random_build_parallel_consistency() {
        // Deterministic pseudo-random edges; check ptr sums and sortedness.
        let n = 1000usize;
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut edges = Vec::new();
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let s = (x >> 32) as u32 % n as u32;
            let d = x as u32 % n as u32;
            edges.push((s, d));
        }
        let c = Csr::from_edges(n, &edges);
        c.validate().unwrap();
        assert_eq!(c.nnz(), edges.len());
        let mut got: Vec<_> = c.edges().collect();
        let mut want = edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
