//! Graph substrate for the Mixen reproduction.
//!
//! This crate provides everything the Mixen framework and its baseline
//! engines consume:
//!
//! * [`EdgeList`] — a mutable edge buffer with parallel sort/dedup.
//! * [`Csr`] — compressed sparse row storage with parallel construction and
//!   transposition. A CSC is simply the [`Csr`] of the transposed graph.
//! * [`Graph`] — a directed graph holding both the out-edge CSR and the
//!   in-edge CSC, the unit every engine is built from.
//! * [`classify`] — connectivity classification (regular / seed / sink /
//!   isolated) and hub detection, per §2.1 of the paper.
//! * [`stats`] — structural statistics reproducing Table 1 and Table 2.
//! * [`gen`] — deterministic graph generators: R-MAT, Kronecker,
//!   uniform-random, road lattices and the profile generator that stands in
//!   for the paper's crawled datasets.
//! * [`datasets`] — the eight named stand-in datasets at selectable scales.
//! * [`io`] — binary CSR (`MXG1`/`MXG2`) and text edge-list readers/writers,
//!   hardened against hostile inputs.
//! * [`error`] — the [`GraphError`] type every fallible path returns.
//! * [`faults`] — deterministic I/O fault injection for robustness tests.
//!
//! Node identifiers are `u32` (the paper uses 32-bit node IDs); edge offsets
//! are `usize` so graphs larger than 4 G edges remain representable.

pub mod ckpt;
pub mod classify;
pub mod components;
pub mod csr;

/// Atomics facade for the concurrency-audited write path (the
/// [`csr`]-internal `SliceWriter` claim bytes): under `model-check` these
/// route through the `mixen-check` instrumented types so schedule
/// exploration sees every access; otherwise they are plain
/// `std::sync::atomic` re-exports with identical codegen.
#[cfg(feature = "model-check")]
pub(crate) mod msync {
    pub(crate) use mixen_check::sync::atomic;
}
#[cfg(not(feature = "model-check"))]
pub(crate) mod msync {
    pub(crate) use std::sync::atomic;
}

/// Model probes (`model-check` feature) for `mixen-check` tests.
#[cfg(feature = "model-check")]
pub mod mc {
    pub use crate::csr::mc::SliceWriterProbe;
}
pub mod datasets;
pub mod degree;
pub mod edgelist;
pub mod error;
pub mod faults;
pub mod gen;
pub mod graph;
pub mod io;
pub mod prop;
pub mod stats;
pub mod weighted;

pub use ckpt::{Checkpoint, CkptValue};
pub use classify::{Classification, NodeClass};
pub use components::{weakly_connected_components, Components, UnionFind};
pub use csr::Csr;
pub use datasets::{Dataset, Scale};
pub use degree::{gini_coefficient, DegreeDistribution, Direction};
pub use edgelist::EdgeList;
pub use error::GraphError;
pub use faults::{Fault, FaultPlan, FaultyReader, FaultyWriter};
pub use graph::Graph;
pub use prop::{max_diff, AtomicProp, MinF32, PropValue};
pub use stats::StructuralStats;
pub use weighted::WGraph;

/// Node identifier. 32 bits, matching the paper's data types (§6.1).
pub type NodeId = u32;

/// Debug-checked narrowing of a `usize` index to a [`NodeId`].
///
/// Every node/edge index in the workspace is derived from a graph with
/// `n <= u32::MAX` nodes (enforced by [`Csr`] construction and the io
/// readers), so the narrowing cannot lose information; the debug assertion
/// catches any future violation of that invariant. This is the single
/// audited truncation site — library code must call `nid()` instead of
/// writing bare `as NodeId` casts (enforced by `mixen-lint`'s `truncation`
/// rule).
#[inline(always)]
pub fn nid(i: usize) -> NodeId {
    debug_assert!(
        u32::try_from(i).is_ok(),
        "index {i} exceeds u32::MAX and cannot be a NodeId"
    );
    // lint: allow(truncation) reason=the single audited narrowing site; debug-asserted above
    i as NodeId
}
