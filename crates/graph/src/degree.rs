//! Degree-distribution analysis.
//!
//! The paper's entire premise rests on skew: "a substantial portion of
//! links is connected by a small fraction of nodes" (§1/§2.1). This module
//! quantifies that skew so the dataset stand-ins can be validated against
//! the published structure: log-binned degree histograms, the Gini
//! coefficient of degree concentration, and a discrete power-law exponent
//! estimate (Clauset-style MLE).

use crate::nid;
use rayon::prelude::*;

use crate::Graph;

/// Which direction's degrees to analyze.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// In-degrees (the hub-defining direction in the paper).
    In,
    /// Out-degrees.
    Out,
}

/// Summary of one degree distribution.
#[derive(Clone, Debug)]
pub struct DegreeDistribution {
    /// Raw degrees (index = node ID).
    pub degrees: Vec<u32>,
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: u32,
    /// Gini coefficient in `[0, 1]`: 0 = perfectly even, → 1 = all links on
    /// one node.
    pub gini: f64,
    /// MLE power-law exponent `α̂ = 1 + n / Σ ln(d / (d_min - 0.5))` over
    /// degrees `≥ d_min` (None when too few qualifying nodes).
    pub powerlaw_alpha: Option<f64>,
    /// Log₂-binned histogram: `bins[i]` counts nodes with degree in
    /// `[2^i, 2^(i+1))`; `bins[0]` additionally holds degree-0 nodes...
    /// no — degree-0 nodes are counted separately in `zero_count`.
    pub bins: Vec<usize>,
    /// Nodes with degree zero.
    pub zero_count: usize,
}

impl DegreeDistribution {
    /// Analyzes `g`'s degrees in the given direction. `d_min` is the
    /// power-law fit cutoff (a common choice is the mean degree).
    pub fn of(g: &Graph, dir: Direction, d_min: u32) -> Self {
        let degrees: Vec<u32> = (0..nid(g.n()))
            .into_par_iter()
            .map(|v| match dir {
                Direction::In => nid(g.in_degree(v)),
                Direction::Out => nid(g.out_degree(v)),
            })
            .collect();
        Self::from_degrees(degrees, d_min)
    }

    /// Analyzes a raw degree sequence.
    pub fn from_degrees(degrees: Vec<u32>, d_min: u32) -> Self {
        let n = degrees.len();
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();
        let mean = if n == 0 { 0.0 } else { total as f64 / n as f64 };
        let max = degrees.iter().copied().max().unwrap_or(0);

        // Gini: 1 - 2 * Σ cumulative share / n (over the sorted sequence).
        let gini = gini_coefficient(&degrees);

        // Discrete power-law MLE over the tail d >= d_min (>= 1).
        let d_min = d_min.max(1);
        let tail: Vec<u32> = degrees.iter().copied().filter(|&d| d >= d_min).collect();
        let powerlaw_alpha = if tail.len() >= 10 {
            let s: f64 = tail
                .iter()
                .map(|&d| (d as f64 / (d_min as f64 - 0.5)).ln())
                .sum();
            (s > 0.0).then(|| 1.0 + tail.len() as f64 / s)
        } else {
            None
        };

        let mut bins = vec![0usize; 33];
        let mut zero_count = 0usize;
        for &d in &degrees {
            if d == 0 {
                zero_count += 1;
            } else {
                bins[d.ilog2() as usize] += 1;
            }
        }
        while bins.last() == Some(&0) && bins.len() > 1 {
            bins.pop();
        }

        Self {
            degrees,
            mean,
            max,
            gini,
            powerlaw_alpha,
            bins,
            zero_count,
        }
    }

    /// The fraction of total degree mass held by the top `frac` of nodes
    /// (e.g. `top_share(0.01)` ≈ 0.99 on weibo per Table 1).
    pub fn top_share(&self, frac: f64) -> f64 {
        let total: u64 = self.degrees.iter().map(|&d| d as u64).sum();
        if total == 0 || self.degrees.is_empty() {
            return 0.0;
        }
        let k = ((self.degrees.len() as f64 * frac).ceil() as usize).clamp(1, self.degrees.len());
        let mut sorted = self.degrees.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = sorted[..k].iter().map(|&d| d as u64).sum();
        top as f64 / total as f64
    }
}

/// Gini coefficient of a non-negative integer sequence.
pub fn gini_coefficient(values: &[u32]) -> f64 {
    let n = values.len();
    let total: u64 = values.iter().map(|&d| d as u64).sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    // G = (2 * Σ i*x_i) / (n * Σ x_i) - (n + 1)/n   with 1-based i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn uniform_degrees_have_zero_gini() {
        assert!(gini_coefficient(&[5, 5, 5, 5]).abs() < 1e-12);
    }

    #[test]
    fn concentrated_degrees_have_high_gini() {
        let mut v = vec![0u32; 99];
        v.push(1000);
        let g = gini_coefficient(&v);
        assert!(g > 0.95, "gini = {g}");
    }

    #[test]
    fn star_graph_distribution() {
        let pairs: Vec<_> = (1..100u32).map(|u| (u, 0)).collect();
        let g = Graph::from_pairs(100, &pairs);
        let d = DegreeDistribution::of(&g, Direction::In, 1);
        assert_eq!(d.max, 99);
        assert_eq!(d.zero_count, 99);
        assert!((d.top_share(0.01) - 1.0).abs() < 1e-12);
        assert!(d.gini > 0.9);
    }

    #[test]
    fn binning_covers_all_nonzero_nodes() {
        let g = Graph::from_pairs(6, &[(0, 1), (2, 1), (3, 1), (4, 1), (1, 0), (5, 0)]);
        let d = DegreeDistribution::of(&g, Direction::In, 1);
        let binned: usize = d.bins.iter().sum();
        assert_eq!(binned + d.zero_count, 6);
    }

    #[test]
    fn powerlaw_alpha_on_synthetic_zipf() {
        // Degrees ~ i^-2 rank sequence => alpha near 1.5 for the rank-size
        // relation; the MLE must at least land in a plausible (1, 4) range
        // and be stable.
        let degrees: Vec<u32> = (1..2000u32).map(|i| (20000 / i).max(1)).collect();
        let d = DegreeDistribution::from_degrees(degrees, 5);
        let alpha = d.powerlaw_alpha.expect("enough tail samples");
        assert!((1.0..4.0).contains(&alpha), "alpha = {alpha}");
    }

    #[test]
    fn skewed_dataset_more_concentrated_than_uniform() {
        use crate::{Dataset, Scale};
        let weibo =
            DegreeDistribution::of(&Dataset::Weibo.generate(Scale::Tiny, 3), Direction::In, 1);
        let urand =
            DegreeDistribution::of(&Dataset::Urand.generate(Scale::Tiny, 3), Direction::In, 1);
        assert!(
            weibo.gini > urand.gini + 0.3,
            "{} vs {}",
            weibo.gini,
            urand.gini
        );
        assert!(weibo.top_share(0.01) > 0.8);
    }

    #[test]
    fn empty_graph_distribution() {
        let g = Graph::from_pairs(0, &[]);
        let d = DegreeDistribution::of(&g, Direction::Out, 1);
        assert_eq!(d.mean, 0.0);
        assert_eq!(d.max, 0);
        assert!(d.powerlaw_alpha.is_none());
    }
}
