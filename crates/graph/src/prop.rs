//! Node property values propagated by the engines.
//!
//! Link-analysis algorithms stream one value per node along the edges and
//! combine arriving values with a commutative monoid. [`PropValue`] captures
//! exactly what every engine (Mixen, Pull, Push, Block, …) needs:
//!
//! * `f32` with `+`/`0` — InDegree, PageRank, HITS, SALSA (the paper's
//!   32-bit property type),
//! * `[f32; K]` with element-wise `+` — Collaborative Filtering's latent
//!   vectors (the SpMV generalization of InDegree, §6.1),
//! * `f32` with `min`/`+inf` — BFS-style distance relaxation (via
//!   [`MinF32`]).

/// A value that can be propagated along edges and combined at destinations.
///
/// The combine operation must be commutative and associative with
/// [`PropValue::identity`] as the neutral element; engines rely on this to
/// reorder and block the reduction freely.
pub trait PropValue: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Neutral element of [`PropValue::combine`].
    fn identity() -> Self;
    /// Folds `other` into `self`.
    fn combine(&mut self, other: Self);
    /// Distance between two values, used for convergence checks and
    /// cross-engine comparisons.
    fn abs_diff(a: Self, b: Self) -> f64;

    /// Applies an edge weight to a message, paired with this value's
    /// combine monoid to form a semiring: multiplicative for sum-monoids
    /// (weighted SpMV, `(+, ×)`), additive for the min monoid (tropical
    /// `(min, +)` — shortest-path relaxation).
    fn scale_edge(self, w: f32) -> Self;

    /// Whether the value can round-trip through the 16-bit compressed
    /// dynamic-bin encodings (Mixen's `BinEncoding::{F16, Q16}`). Only
    /// single-`f32` property types opt in; for every other type the
    /// engines silently keep full-width streams and never call the
    /// conversion hooks below.
    const ENCODABLE: bool = false;

    /// Projects the value to the `f32` the compressed encodings store.
    /// Meaningful only when [`PropValue::ENCODABLE`]; the default is a
    /// placeholder that is never reached by the engines.
    #[inline]
    fn to_stream_f32(self) -> f32 {
        0.0
    }

    /// Rebuilds a value from a (possibly lossy) streamed `f32`. Meaningful
    /// only when [`PropValue::ENCODABLE`]; see [`PropValue::to_stream_f32`].
    #[inline]
    fn from_stream_f32(_v: f32) -> Self {
        Self::identity()
    }
}

impl PropValue for f32 {
    #[inline]
    fn identity() -> Self {
        0.0
    }

    #[inline]
    fn combine(&mut self, other: Self) {
        *self += other;
    }

    #[inline]
    fn abs_diff(a: Self, b: Self) -> f64 {
        (a as f64 - b as f64).abs()
    }

    #[inline]
    fn scale_edge(self, w: f32) -> Self {
        self * w
    }

    const ENCODABLE: bool = true;

    #[inline]
    fn to_stream_f32(self) -> f32 {
        self
    }

    #[inline]
    fn from_stream_f32(v: f32) -> Self {
        v
    }
}

impl PropValue for f64 {
    #[inline]
    fn identity() -> Self {
        0.0
    }

    #[inline]
    fn combine(&mut self, other: Self) {
        *self += other;
    }

    #[inline]
    fn abs_diff(a: Self, b: Self) -> f64 {
        (a - b).abs()
    }

    #[inline]
    fn scale_edge(self, w: f32) -> Self {
        self * w as f64
    }
}

impl<const K: usize> PropValue for [f32; K] {
    #[inline]
    fn identity() -> Self {
        [0.0; K]
    }

    #[inline]
    fn combine(&mut self, other: Self) {
        for (a, b) in self.iter_mut().zip(other) {
            *a += b;
        }
    }

    #[inline]
    fn abs_diff(a: Self, b: Self) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, y)| (x as f64 - y as f64).abs())
            .fold(0.0, f64::max)
    }

    #[inline]
    fn scale_edge(self, w: f32) -> Self {
        self.map(|x| x * w)
    }
}

/// `f32` under the `min` monoid — the relaxation value of BFS/SSSP-style
/// traversals expressed through the same propagation kernels. `Default` is
/// the monoid identity (`+inf` — "unreached").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinF32(pub f32);

impl Default for MinF32 {
    fn default() -> Self {
        MinF32(f32::INFINITY)
    }
}

impl PropValue for MinF32 {
    #[inline]
    fn identity() -> Self {
        MinF32(f32::INFINITY)
    }

    #[inline]
    fn combine(&mut self, other: Self) {
        if other.0 < self.0 {
            self.0 = other.0;
        }
    }

    #[inline]
    fn abs_diff(a: Self, b: Self) -> f64 {
        if a.0 == b.0 {
            0.0
        } else if a.0.is_infinite() || b.0.is_infinite() {
            f64::INFINITY
        } else {
            (a.0 as f64 - b.0 as f64).abs()
        }
    }

    #[inline]
    fn scale_edge(self, w: f32) -> Self {
        // Tropical semiring: traversing an edge adds its length.
        MinF32(self.0 + w)
    }
}

/// Property values that can be combined through 32-bit atomic slots — what a
/// pushing-flow engine (Ligra-style, Algorithm 1 lines 1–3 of the paper)
/// needs for its `atomAdd`. Values are split into independent 32-bit lanes;
/// the combine of each lane must depend only on that lane (true for
/// element-wise monoids like `+` and `min` over `f32` lanes).
///
/// `f64` deliberately does not implement this: the paper's property types
/// are 32-bit, and a 64-bit value cannot be combined lane-by-lane.
pub trait AtomicProp: PropValue {
    /// Number of 32-bit lanes.
    const LANES: usize;
    /// Encodes the value into its lanes (`out.len() == LANES`).
    fn write_lanes(self, out: &mut [u32]);
    /// Combines `other`'s lane `lane` into existing lane bits.
    fn fold_lane(bits: u32, other: Self, lane: usize) -> u32;
    /// Decodes a value from its lanes.
    fn read_lanes(lanes: &[u32]) -> Self;
}

impl AtomicProp for f32 {
    const LANES: usize = 1;

    #[inline]
    fn write_lanes(self, out: &mut [u32]) {
        out[0] = self.to_bits();
    }

    #[inline]
    fn fold_lane(bits: u32, other: Self, _lane: usize) -> u32 {
        (f32::from_bits(bits) + other).to_bits()
    }

    #[inline]
    fn read_lanes(lanes: &[u32]) -> Self {
        f32::from_bits(lanes[0])
    }
}

impl AtomicProp for MinF32 {
    const LANES: usize = 1;

    #[inline]
    fn write_lanes(self, out: &mut [u32]) {
        out[0] = self.0.to_bits();
    }

    #[inline]
    fn fold_lane(bits: u32, other: Self, _lane: usize) -> u32 {
        f32::from_bits(bits).min(other.0).to_bits()
    }

    #[inline]
    fn read_lanes(lanes: &[u32]) -> Self {
        MinF32(f32::from_bits(lanes[0]))
    }
}

impl<const K: usize> AtomicProp for [f32; K] {
    const LANES: usize = K;

    #[inline]
    fn write_lanes(self, out: &mut [u32]) {
        for (o, v) in out.iter_mut().zip(self) {
            *o = v.to_bits();
        }
    }

    #[inline]
    fn fold_lane(bits: u32, other: Self, lane: usize) -> u32 {
        (f32::from_bits(bits) + other[lane]).to_bits()
    }

    #[inline]
    fn read_lanes(lanes: &[u32]) -> Self {
        std::array::from_fn(|i| f32::from_bits(lanes[i]))
    }
}

/// Maximum `abs_diff` over two equally-long value slices.
pub fn max_diff<V: PropValue>(a: &[V], b: &[V]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| V::abs_diff(x, y))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_monoid_laws() {
        let mut x = f32::identity();
        x.combine(2.5);
        x.combine(1.5);
        assert_eq!(x, 4.0);
        let mut y = 4.0f32;
        y.combine(f32::identity());
        assert_eq!(y, 4.0);
    }

    #[test]
    fn array_combines_elementwise() {
        let mut a = [1.0f32, 2.0];
        a.combine([10.0, 20.0]);
        assert_eq!(a, [11.0, 22.0]);
        assert_eq!(<[f32; 2]>::identity(), [0.0, 0.0]);
    }

    #[test]
    fn min_f32_takes_minimum() {
        let mut a = MinF32::identity();
        assert!(a.0.is_infinite());
        a.combine(MinF32(3.0));
        a.combine(MinF32(5.0));
        assert_eq!(a.0, 3.0);
    }

    #[test]
    fn abs_diff_sane() {
        assert_eq!(f32::abs_diff(1.0, 3.5), 2.5);
        assert_eq!(<[f32; 2]>::abs_diff([0.0, 1.0], [0.5, 0.0]), 1.0);
        assert_eq!(MinF32::abs_diff(MinF32(2.0), MinF32(2.0)), 0.0);
        assert!(MinF32::abs_diff(MinF32::identity(), MinF32(2.0)).is_infinite());
    }

    #[test]
    fn atomic_lanes_roundtrip_f32() {
        let mut lanes = [0u32; 1];
        3.5f32.write_lanes(&mut lanes);
        assert_eq!(f32::read_lanes(&lanes), 3.5);
        let folded = f32::fold_lane(lanes[0], 1.5, 0);
        assert_eq!(f32::from_bits(folded), 5.0);
    }

    #[test]
    fn atomic_lanes_array() {
        let mut lanes = [0u32; 3];
        [1.0f32, 2.0, 3.0].write_lanes(&mut lanes);
        assert_eq!(<[f32; 3]>::read_lanes(&lanes), [1.0, 2.0, 3.0]);
        let folded = <[f32; 3]>::fold_lane(lanes[1], [10.0, 20.0, 30.0], 1);
        assert_eq!(f32::from_bits(folded), 22.0);
    }

    #[test]
    fn atomic_lanes_min() {
        let mut lanes = [0u32; 1];
        MinF32(7.0).write_lanes(&mut lanes);
        let folded = MinF32::fold_lane(lanes[0], MinF32(3.0), 0);
        assert_eq!(f32::from_bits(folded), 3.0);
        let folded2 = MinF32::fold_lane(lanes[0], MinF32(9.0), 0);
        assert_eq!(f32::from_bits(folded2), 7.0);
    }

    #[test]
    fn scale_edge_semirings() {
        assert_eq!(3.0f32.scale_edge(2.0), 6.0);
        assert_eq!([1.0f32, 2.0].scale_edge(0.5), [0.5, 1.0]);
        assert_eq!(MinF32(3.0).scale_edge(2.0), MinF32(5.0));
        // Identity stays absorbing under the tropical scale.
        assert!(MinF32::identity().scale_edge(1.0).0.is_infinite());
    }

    #[test]
    fn stream_hooks_round_trip_only_for_f32() {
        assert!(f32::ENCODABLE);
        assert_eq!(3.25f32.to_stream_f32(), 3.25);
        assert_eq!(f32::from_stream_f32(3.25), 3.25);
        // Every other type keeps full-width streams.
        assert!(!f64::ENCODABLE);
        assert!(!<[f32; 2]>::ENCODABLE);
        assert!(!MinF32::ENCODABLE);
    }

    #[test]
    fn max_diff_over_slices() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 4.0, 3.5];
        assert_eq!(max_diff(&a, &b), 2.0);
    }
}
