//! The eight named datasets of the paper's evaluation, as scaled stand-ins.
//!
//! The crawled graphs (weibo, track, wiki, pld) are produced by the
//! [`crate::gen::generate_profile`] generator targeting their published
//! structure;
//! rmat/kron/urand use the same generators (and parameters) as the paper;
//! road is a partial 2-D lattice with road-network characteristics. See
//! DESIGN.md §5 for the substitution rationale.
//!
//! [`Scale`] divides the paper's node counts by a power of two so the whole
//! suite runs on one machine: `Medium` is 1/64 of the published sizes.

use crate::gen::{self, ProfileSpec, RmatParams};
use crate::Graph;

/// Size multiplier relative to the paper's published graph sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1/1024 of the paper — unit/integration tests (thousands of nodes).
    Tiny,
    /// ~1/256 of the paper — quick experiments.
    Small,
    /// ~1/64 of the paper — default for the benchmark harness.
    Medium,
    /// ~1/16 of the paper — slower, closest shape to the published runs.
    Large,
}

impl Scale {
    /// Divisor applied to the paper's node counts.
    pub fn divisor(self) -> usize {
        match self {
            Scale::Tiny => 1024,
            Scale::Small => 256,
            Scale::Medium => 64,
            Scale::Large => 16,
        }
    }

    /// log2 of the divisor, used by the 2^scale generators.
    fn log2_divisor(self) -> u32 {
        self.divisor().trailing_zeros()
    }
}

/// The eight evaluation datasets (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Social network; 99 % seed nodes, extreme hub concentration.
    Weibo,
    /// Web-tracker bipartite-ish crawl.
    Track,
    /// Wikipedia links (DBpedia); 45 % sinks.
    Wiki,
    /// Pay-level-domain web graph; all four classes present.
    Pld,
    /// Synthetic R-MAT (GAP parameters), 59 % isolated.
    Rmat,
    /// Synthetic Kronecker, undirected, 51 % isolated.
    Kron,
    /// Road network: undirected, non-skewed, huge diameter.
    Road,
    /// Uniform random: undirected, non-skewed.
    Urand,
}

impl Dataset {
    /// All datasets in the paper's table order.
    pub const ALL: [Dataset; 8] = [
        Dataset::Weibo,
        Dataset::Track,
        Dataset::Wiki,
        Dataset::Pld,
        Dataset::Rmat,
        Dataset::Kron,
        Dataset::Road,
        Dataset::Urand,
    ];

    /// The skewed subset (Table 1 top block).
    pub const SKEWED: [Dataset; 6] = [
        Dataset::Weibo,
        Dataset::Track,
        Dataset::Wiki,
        Dataset::Pld,
        Dataset::Rmat,
        Dataset::Kron,
    ];

    /// Lower-case name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Weibo => "weibo",
            Dataset::Track => "track",
            Dataset::Wiki => "wiki",
            Dataset::Pld => "pld",
            Dataset::Rmat => "rmat",
            Dataset::Kron => "kron",
            Dataset::Road => "road",
            Dataset::Urand => "urand",
        }
    }

    /// Parses a dataset name (as printed by [`Dataset::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|d| d.name() == name)
    }

    /// Whether the paper labels the dataset "Real" (Table 2).
    pub fn is_real(self) -> bool {
        matches!(
            self,
            Dataset::Weibo | Dataset::Track | Dataset::Wiki | Dataset::Pld | Dataset::Road
        )
    }

    /// Whether the paper stores the dataset as a directed graph (Table 2).
    pub fn is_directed(self) -> bool {
        !matches!(self, Dataset::Kron | Dataset::Road | Dataset::Urand)
    }

    /// Generates the dataset at `scale` with a deterministic `seed`.
    pub fn generate(self, scale: Scale, seed: u64) -> Graph {
        let div = scale.divisor();
        let k = scale.log2_divisor();
        match self {
            Dataset::Weibo => gen::generate_profile(&ProfileSpec {
                n: 5_800_000 / div,
                avg_degree: 45.0,
                frac_regular: 0.01,
                frac_seed: 0.99,
                frac_sink: 0.0,
                frac_isolated: 0.0,
                beta: 0.06,
                in_skew: 1.05,
                out_skew: 0.55,
                seed,
            }),
            Dataset::Track => gen::generate_profile(&ProfileSpec {
                n: 12_800_000 / div,
                avg_degree: 11.0,
                frac_regular: 0.46,
                frac_seed: 0.54,
                frac_sink: 0.0,
                frac_isolated: 0.0,
                beta: 0.60,
                in_skew: 0.95,
                out_skew: 0.55,
                seed,
            }),
            Dataset::Wiki => gen::generate_profile(&ProfileSpec {
                n: 18_200_000 / div,
                avg_degree: 9.5,
                frac_regular: 0.22,
                frac_seed: 0.33,
                frac_sink: 0.45,
                frac_isolated: 0.0,
                beta: 0.78,
                in_skew: 0.85,
                out_skew: 0.55,
                seed,
            }),
            Dataset::Pld => gen::generate_profile(&ProfileSpec {
                n: 42_900_000 / div,
                avg_degree: 14.5,
                frac_regular: 0.56,
                frac_seed: 0.08,
                frac_sink: 0.28,
                frac_isolated: 0.08,
                beta: 0.84,
                in_skew: 0.95,
                out_skew: 0.55,
                seed,
            }),
            // Paper rmat: n = 8.4 M = 2^23, edge factor 16.
            Dataset::Rmat => gen::rmat(23 - k, 16, RmatParams::default(), seed),
            // Paper kron: n = 67.1 M = 2^26, 2.1 B edges => edge factor 16
            // before symmetrization.
            Dataset::Kron => gen::kronecker(26 - k, 16, seed),
            // Paper road: n = 23.9 M, avg directed degree 2.4.
            Dataset::Road => {
                let n = 23_900_000 / div;
                let side = (n as f64).sqrt().round() as usize;
                gen::road(side, side, 0.12, seed)
            }
            // Paper urand: n = 8.4 M = 2^23, m = 268 M => degree 32.
            Dataset::Urand => gen::uniform(8_400_000 / div, 32, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StructuralStats;

    #[test]
    fn names_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn tiny_scale_generates_all() {
        for d in Dataset::ALL {
            let g = d.generate(Scale::Tiny, 1);
            assert!(g.n() > 100, "{} too small: {}", d.name(), g.n());
            g.validate().unwrap();
        }
    }

    #[test]
    fn skewed_flags_match_paper() {
        for d in Dataset::SKEWED {
            let g = d.generate(Scale::Tiny, 2);
            let s = StructuralStats::of(&g);
            assert!(s.is_skewed(), "{} should be skewed: {:?}", d.name(), s);
        }
        for d in [Dataset::Road, Dataset::Urand] {
            let g = d.generate(Scale::Tiny, 2);
            let s = StructuralStats::of(&g);
            assert!(!s.is_skewed(), "{} should not be skewed", d.name());
        }
    }

    #[test]
    fn undirected_datasets_are_symmetric() {
        for d in Dataset::ALL {
            let g = d.generate(Scale::Tiny, 3);
            assert_eq!(
                g.is_symmetric(),
                !d.is_directed(),
                "symmetry mismatch for {}",
                d.name()
            );
        }
    }

    #[test]
    fn alpha_beta_close_to_paper() {
        // Paper Table 2 values; tolerance is generous at tiny scale.
        let targets = [
            (Dataset::Weibo, 0.01, 0.06, 0.05, 0.25),
            (Dataset::Track, 0.46, 0.60, 0.06, 0.15),
            (Dataset::Wiki, 0.22, 0.78, 0.05, 0.15),
            (Dataset::Pld, 0.56, 0.84, 0.06, 0.12),
        ];
        for (d, alpha, beta, tol_a, tol_b) in targets {
            let g = d.generate(Scale::Tiny, 4);
            let s = StructuralStats::of(&g);
            assert!(
                (s.alpha - alpha).abs() < tol_a,
                "{}: alpha {} vs paper {}",
                d.name(),
                s.alpha,
                alpha
            );
            assert!(
                (s.beta - beta).abs() < tol_b,
                "{}: beta {} vs paper {}",
                d.name(),
                s.beta,
                beta
            );
        }
    }
}
