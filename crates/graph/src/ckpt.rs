//! Durable iteration checkpoints (`CKPT1`).
//!
//! A checkpoint freezes the dense value vector of a supervised run so an
//! interrupted process can resume and converge to bit-identical output at a
//! fixed lane count. The container follows the MXG2 conventions from
//! [`crate::io`]: little-endian fixed-width header, CRC-32/IEEE payload
//! checksum, and allocation-capped reading of untrusted sizes.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        5 bytes   b"CKPT1"
//! iteration    u64       iterations already completed
//! residual     u64       f64 bit pattern of the last observed residual
//! fingerprint  u64       RunnerOpts + lane-count fingerprint (staleness)
//! graph_crc    u32       MXG2 payload checksum of the source graph
//! value_width  u32       bytes per value (4 for f32, 8 for f64, ...)
//! count        u64       number of values
//! payload_crc  u32       CRC-32 of the payload bytes
//! payload      count × value_width bytes
//! ```
//!
//! `fingerprint` and `graph_crc` are opaque to this module: the reader hands
//! them back and [`crate::error::GraphError`]-typed rejection of stale
//! checkpoints happens in the runner, which knows the live graph and opts.
//! Everything structural — magic, caps, truncation, checksum — is enforced
//! here, and every failure is a typed error, never a panic.

use std::fs;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::error::{GraphError, Result};
use crate::io::{Crc32, MAX_NODES};

/// Magic prefix of the checkpoint container.
pub const CKPT_MAGIC: &[u8; 5] = b"CKPT1";

/// Hard cap on the per-value byte width accepted from untrusted headers.
/// The widest supported value type is a small fixed-arity `[f32; K]`.
pub const MAX_VALUE_WIDTH: u32 = 256;

/// Incremental-read chunk bound, mirroring `io::ALLOC_CHUNK`: never allocate
/// more than this many bytes up front on the say-so of a header.
const CHUNK_BYTES: usize = 1 << 20;

/// A value type that can live in a checkpoint payload.
///
/// The encoding is the value's little-endian bit pattern, so a
/// save/load round trip is bitwise lossless — the property the
/// bit-identical-resume contract rests on.
pub trait CkptValue: Sized {
    /// Encoded width in bytes.
    const WIDTH: u32;

    /// Appends the little-endian encoding of `self` to `out`.
    fn write_le(&self, out: &mut Vec<u8>);

    /// Decodes a value from exactly [`Self::WIDTH`] bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

impl CkptValue for f32 {
    const WIDTH: u32 = 4;

    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> Self {
        let mut b = [0u8; 4];
        b.copy_from_slice(&bytes[..4]);
        f32::from_le_bytes(b)
    }
}

impl CkptValue for f64 {
    const WIDTH: u32 = 8;

    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[..8]);
        f64::from_le_bytes(b)
    }
}

impl<const K: usize> CkptValue for [f32; K] {
    // lint: allow(truncation) reason=K is a small compile-time arity, not a node id
    const WIDTH: u32 = 4 * K as u32;

    fn write_le(&self, out: &mut Vec<u8>) {
        for v in self {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn read_le(bytes: &[u8]) -> Self {
        let mut out = [0f32; K];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[i * 4..i * 4 + 4]);
            *slot = f32::from_le_bytes(b);
        }
        out
    }
}

/// A decoded (or about-to-be-written) checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Iterations already completed when the snapshot was taken.
    pub iteration: u64,
    /// Residual observed at the snapshot (bit-preserved through the file).
    pub residual: f64,
    /// Fingerprint of the runner configuration + lane count that produced
    /// the snapshot; resuming under a different configuration is rejected.
    pub fingerprint: u64,
    /// MXG2 payload checksum of the source graph, pinning the snapshot to
    /// the exact graph bytes it was computed from.
    pub graph_checksum: u32,
    /// Bytes per encoded value.
    pub value_width: u32,
    payload: Vec<u8>,
}

impl Checkpoint {
    /// Builds a checkpoint from a dense value vector.
    pub fn from_values<V: CkptValue>(
        iteration: u64,
        residual: f64,
        fingerprint: u64,
        graph_checksum: u32,
        values: &[V],
    ) -> Self {
        let width = V::WIDTH as usize;
        let mut payload = Vec::with_capacity(values.len().saturating_mul(width));
        for v in values {
            v.write_le(&mut payload);
        }
        Checkpoint {
            iteration,
            residual,
            fingerprint,
            graph_checksum,
            value_width: V::WIDTH,
            payload,
        }
    }

    /// Number of values in the payload.
    pub fn count(&self) -> usize {
        self.payload.len() / (self.value_width.max(1) as usize)
    }

    /// Total encoded size in bytes (header + payload).
    pub fn encoded_len(&self) -> u64 {
        // magic + iteration + residual + fingerprint + graph_crc + width +
        // count + payload_crc
        let header = 5 + 8 + 8 + 8 + 4 + 4 + 8 + 4;
        header + self.payload.len() as u64
    }

    /// Decodes the payload as a vector of `V`, rejecting width mismatches
    /// (e.g. an `f64` checkpoint resumed into an `f32` run).
    pub fn values<V: CkptValue>(&self) -> Result<Vec<V>> {
        if self.value_width != V::WIDTH {
            return Err(GraphError::Format(format!(
                "checkpoint value width is {} bytes, expected {}",
                self.value_width,
                V::WIDTH
            )));
        }
        let width = V::WIDTH as usize;
        Ok(self.payload.chunks_exact(width).map(V::read_le).collect())
    }

    /// Serializes the checkpoint to a writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut crc = Crc32::new();
        crc.update(&self.payload);
        w.write_all(CKPT_MAGIC)?;
        w.write_all(&self.iteration.to_le_bytes())?;
        w.write_all(&self.residual.to_bits().to_le_bytes())?;
        w.write_all(&self.fingerprint.to_le_bytes())?;
        w.write_all(&self.graph_checksum.to_le_bytes())?;
        w.write_all(&self.value_width.to_le_bytes())?;
        w.write_all(&(self.count() as u64).to_le_bytes())?;
        w.write_all(&crc.finish().to_le_bytes())?;
        w.write_all(&self.payload)?;
        Ok(())
    }

    /// Reads and validates a checkpoint from a reader. Sizes are capped
    /// before any allocation and the payload checksum is verified; any
    /// structural problem surfaces as a typed [`GraphError`].
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let mut magic = [0u8; 5];
        r.read_exact(&mut magic).map_err(GraphError::Io)?;
        if &magic != CKPT_MAGIC {
            return Err(GraphError::Format(format!(
                "bad magic {magic:02x?}: not a CKPT1 checkpoint"
            )));
        }
        let iteration = read_u64(r)?;
        let residual = f64::from_bits(read_u64(r)?);
        let fingerprint = read_u64(r)?;
        let graph_checksum = read_u32(r)?;
        let value_width = read_u32(r)?;
        let count = read_u64(r)?;
        let stored_crc = read_u32(r)?;
        if value_width == 0 || value_width > MAX_VALUE_WIDTH {
            return Err(GraphError::Capacity {
                what: "checkpoint value width",
                requested: u64::from(value_width),
                limit: u64::from(MAX_VALUE_WIDTH),
            });
        }
        if count >= MAX_NODES {
            return Err(GraphError::Capacity {
                what: "checkpoint value count",
                requested: count,
                limit: MAX_NODES,
            });
        }
        let total =
            (count as usize)
                .checked_mul(value_width as usize)
                .ok_or(GraphError::Capacity {
                    what: "checkpoint payload bytes",
                    requested: count,
                    limit: usize::MAX as u64,
                })?;
        let mut crc = Crc32::new();
        let mut payload = Vec::with_capacity(total.min(CHUNK_BYTES));
        let mut buf = vec![0u8; CHUNK_BYTES.min(total.max(1))];
        let mut left = total;
        while left > 0 {
            let take = left.min(buf.len());
            r.read_exact(&mut buf[..take]).map_err(GraphError::Io)?;
            crc.update(&buf[..take]);
            payload.extend_from_slice(&buf[..take]);
            left -= take;
        }
        let computed = crc.finish();
        if stored_crc != computed {
            return Err(GraphError::Checksum {
                stored: stored_crc,
                computed,
            });
        }
        Ok(Checkpoint {
            iteration,
            residual,
            fingerprint,
            graph_checksum,
            value_width,
            payload,
        })
    }

    /// Writes the checkpoint atomically: the bytes land in `<path>.tmp`,
    /// are fsynced, and only then renamed over `path`. A crash at any point
    /// leaves either the previous checkpoint or a `.tmp` the loader never
    /// reads — never a torn file at the final path. Returns the encoded
    /// size in bytes.
    pub fn save_atomic(&self, path: &Path) -> Result<u64> {
        let tmp = tmp_path(path);
        {
            let file = fs::File::create(&tmp).map_err(GraphError::Io)?;
            let mut w = BufWriter::new(file);
            self.write_to(&mut w).map_err(GraphError::Io)?;
            w.flush().map_err(GraphError::Io)?;
            w.get_ref().sync_all().map_err(GraphError::Io)?;
        }
        fs::rename(&tmp, path).map_err(GraphError::Io)?;
        Ok(self.encoded_len())
    }

    /// Loads and validates a checkpoint from a file.
    pub fn load(path: &Path) -> Result<Self> {
        let file = fs::File::open(path).map_err(GraphError::Io)?;
        let mut r = BufReader::new(file);
        Checkpoint::read_from(&mut r)
    }
}

/// The temp-file sibling `save_atomic` stages into before renaming.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(GraphError::Io)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(GraphError::Io)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let vals: Vec<f32> = (0..17).map(|i| i as f32 * 0.25 - 1.0).collect();
        Checkpoint::from_values(42, 1.5e-3, 0xDEAD_BEEF_CAFE_F00D, 0x1234_5678, &vals)
    }

    #[test]
    fn roundtrip_is_bitwise_lossless() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..5], CKPT_MAGIC);
        assert_eq!(buf.len() as u64, ck.encoded_len());
        let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, ck);
        let vals: Vec<f32> = back.values().unwrap();
        let orig: Vec<f32> = ck.values().unwrap();
        for (a, b) in vals.iter().zip(&orig) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn residual_bits_survive_including_infinity() {
        for res in [f64::INFINITY, 0.0, -0.0, 1.25e-9] {
            let ck = Checkpoint::from_values::<f32>(1, res, 2, 3, &[1.0]);
            let mut buf = Vec::new();
            ck.write_to(&mut buf).unwrap();
            let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
            assert_eq!(back.residual.to_bits(), res.to_bits());
        }
    }

    #[test]
    fn wider_value_types_roundtrip() {
        let vals: Vec<[f32; 4]> = vec![[1.0, 2.0, 3.0, 4.0], [0.5; 4]];
        let ck = Checkpoint::from_values(7, 0.0, 1, 2, &vals);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.values::<[f32; 4]>().unwrap(), vals);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Checkpoint::read_from(&mut &b"NOPE!xxxxxxxx"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_truncation_as_io() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        for cut in [3, 20, buf.len() - 1] {
            let err = Checkpoint::read_from(&mut &buf[..cut]).unwrap_err();
            assert!(matches!(err, GraphError::Io(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn rejects_flipped_payload_byte_as_checksum() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x10;
        let err = Checkpoint::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Checksum { .. }), "{err}");
    }

    #[test]
    fn rejects_absurd_count_without_allocating() {
        let ck = Checkpoint::from_values::<f32>(0, 0.0, 0, 0, &[1.0]);
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        // Overwrite the count field (offset 5+8+8+8+4+4 = 37) with u64::MAX.
        buf[37..45].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = Checkpoint::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Capacity { .. }), "{err}");
    }

    #[test]
    fn rejects_width_mismatch_on_decode() {
        let ck = Checkpoint::from_values::<f32>(0, 0.0, 0, 0, &[1.0, 2.0]);
        let err = ck.values::<f64>().unwrap_err();
        assert!(matches!(err, GraphError::Format(_)), "{err}");
    }

    #[test]
    fn save_atomic_leaves_no_tmp_behind() {
        let dir = std::env::temp_dir().join("mixen_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.ckpt");
        let ck = sample();
        let bytes = ck.save_atomic(&path).unwrap();
        assert_eq!(bytes, ck.encoded_len());
        assert!(!tmp_path(&path).exists());
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ck);
        std::fs::remove_file(&path).ok();
    }
}
