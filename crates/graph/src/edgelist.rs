//! Mutable edge buffer with parallel normalization.
//!
//! Generators and loaders accumulate `(src, dst)` pairs here, then call
//! [`EdgeList::dedup`] / [`EdgeList::symmetrize`] before building a
//! [`crate::Graph`]. All operations are deterministic.

use rayon::prelude::*;

use crate::NodeId;

/// A growable list of directed edges over `n` nodes.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl EdgeList {
    /// Creates an empty edge list over `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list from existing pairs. Panics (in debug builds) on
    /// out-of-range endpoints.
    pub fn from_pairs(n: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        debug_assert!(edges
            .iter()
            .all(|&(s, d)| (s as usize) < n && (d as usize) < n));
        Self { n, edges }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges currently stored.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends one edge.
    #[inline]
    pub fn push(&mut self, src: NodeId, dst: NodeId) {
        debug_assert!((src as usize) < self.n && (dst as usize) < self.n);
        self.edges.push((src, dst));
    }

    /// Extends from an iterator of pairs.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = (NodeId, NodeId)>) {
        self.edges.extend(iter);
    }

    /// Read-only view of the pairs.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Parallel sort + removal of duplicate edges (keeps self-loops unless
    /// [`EdgeList::drop_self_loops`] is also called).
    pub fn dedup(&mut self) {
        self.edges.par_sort_unstable();
        self.edges.dedup();
    }

    /// Removes all `u -> u` edges.
    pub fn drop_self_loops(&mut self) {
        self.edges.retain(|&(s, d)| s != d);
    }

    /// Adds the reverse of every edge, then deduplicates. The result
    /// represents an undirected graph stored as a symmetric directed one,
    /// which is how the paper's undirected datasets (kron, road, urand) are
    /// processed.
    pub fn symmetrize(&mut self) {
        let rev: Vec<_> = self
            .edges
            .par_iter()
            .filter(|&&(s, d)| s != d)
            .map(|&(s, d)| (d, s))
            .collect();
        self.edges.extend(rev);
        self.dedup();
    }

    /// Applies a node relabeling `perm` (old id -> new id) to every endpoint.
    pub fn relabel(&mut self, perm: &[NodeId]) {
        assert_eq!(perm.len(), self.n);
        self.edges.par_iter_mut().for_each(|e| {
            e.0 = perm[e.0 as usize];
            e.1 = perm[e.1 as usize];
        });
    }

    /// Consumes the list, returning the raw pairs.
    pub fn into_pairs(self) -> Vec<(NodeId, NodeId)> {
        self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_removes_duplicates_only() {
        let mut e = EdgeList::from_pairs(3, vec![(0, 1), (0, 1), (1, 0), (2, 2)]);
        e.dedup();
        assert_eq!(e.pairs(), &[(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut e = EdgeList::from_pairs(4, vec![(0, 1), (2, 3), (3, 2), (1, 1)]);
        e.symmetrize();
        let pairs: std::collections::BTreeSet<_> = e.pairs().iter().copied().collect();
        for &(s, d) in &pairs {
            if s != d {
                assert!(pairs.contains(&(d, s)), "missing reverse of ({s},{d})");
            }
        }
        assert!(pairs.contains(&(1, 1)), "self loop must survive");
    }

    #[test]
    fn drop_self_loops_works() {
        let mut e = EdgeList::from_pairs(2, vec![(0, 0), (0, 1), (1, 1)]);
        e.drop_self_loops();
        assert_eq!(e.pairs(), &[(0, 1)]);
    }

    #[test]
    fn relabel_applies_permutation() {
        let mut e = EdgeList::from_pairs(3, vec![(0, 1), (1, 2)]);
        e.relabel(&[2, 0, 1]);
        assert_eq!(e.pairs(), &[(2, 0), (0, 1)]);
    }

    #[test]
    fn empty_list_operations() {
        let mut e = EdgeList::new(5);
        assert!(e.is_empty());
        e.dedup();
        e.symmetrize();
        assert_eq!(e.len(), 0);
    }
}
