//! Structural statistics reproducing Table 1 and Table 2 of the paper.
//!
//! * Table 1: `V_hub` / `E_hub` percentages and the regular/seed/sink/
//!   isolated split.
//! * Table 2: `n`, `m`, skewness, directedness, `α = r/n` (fraction of
//!   regular nodes) and `β = m̃/m` (fraction of edges inside the regular
//!   subgraph).

use crate::nid;
use rayon::prelude::*;

use crate::{Classification, Graph, NodeClass};

/// All structural attributes the paper reports for a dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct StructuralStats {
    /// Node count.
    pub n: usize,
    /// Directed edge count.
    pub m: usize,
    /// Fraction of nodes that are hubs (Table 1 `V_hub`).
    pub v_hub: f64,
    /// Fraction of edges incident to hubs via their in-side (Table 1 `E_hub`).
    pub e_hub: f64,
    /// Fraction of regular nodes (Table 1 `Reg.`, Table 2 `α`).
    pub frac_regular: f64,
    /// Fraction of seed nodes.
    pub frac_seed: f64,
    /// Fraction of sink nodes.
    pub frac_sink: f64,
    /// Fraction of isolated nodes.
    pub frac_isolated: f64,
    /// `α = r/n` — identical to `frac_regular`, named as in §5.
    pub alpha: f64,
    /// `β = m̃/m` — fraction of edges with both endpoints regular (§5).
    pub beta: f64,
    /// Whether every edge has its reverse (undirected storage).
    pub symmetric: bool,
}

impl StructuralStats {
    /// Computes every statistic in one pass over the graph plus one pass for
    /// `β` (edges whose source *and* destination are regular).
    pub fn of(g: &Graph) -> Self {
        let c = Classification::of(g);
        Self::of_classified(g, &c)
    }

    /// Same as [`StructuralStats::of`] but reuses an existing
    /// [`Classification`].
    pub fn of_classified(g: &Graph, c: &Classification) -> Self {
        let n = g.n();
        let m = g.m();
        let nf = n.max(1) as f64;
        let mf = m.max(1) as f64;
        let classes = c.classes();
        let regular_edges: usize = (0..n)
            .into_par_iter()
            .map(|u| {
                if classes[u] == NodeClass::Regular {
                    g.out_neighbors(nid(u))
                        .iter()
                        .filter(|&&v| classes[v as usize] == NodeClass::Regular)
                        .count()
                } else {
                    0
                }
            })
            .sum();
        Self {
            n,
            m,
            v_hub: c.hub_count() as f64 / nf,
            e_hub: c.hub_in_edges() as f64 / mf,
            frac_regular: c.count(NodeClass::Regular) as f64 / nf,
            frac_seed: c.count(NodeClass::Seed) as f64 / nf,
            frac_sink: c.count(NodeClass::Sink) as f64 / nf,
            frac_isolated: c.count(NodeClass::Isolated) as f64 / nf,
            alpha: c.count(NodeClass::Regular) as f64 / nf,
            beta: regular_edges as f64 / mf,
            symmetric: g.is_symmetric(),
        }
    }

    /// The paper's skewness heuristic: a graph is "skewed" when a small
    /// fraction of nodes carries most of the connections. We use the Table 1
    /// observation directly: hubs < 20 % of nodes while owning > 75 % of
    /// edges.
    pub fn is_skewed(&self) -> bool {
        self.v_hub < 0.20 && self.e_hub > 0.75
    }

    /// Formats one Table 1 row: percentages of hubs, hub edges and the four
    /// classes.
    pub fn table1_row(&self, name: &str) -> String {
        format!(
            "{name:>8}  {:>5.0} {:>5.0}  {:>4.0} {:>4.0} {:>4.0} {:>4.0}",
            self.v_hub * 100.0,
            self.e_hub * 100.0,
            self.frac_regular * 100.0,
            self.frac_seed * 100.0,
            self.frac_sink * 100.0,
            self.frac_isolated * 100.0,
        )
    }

    /// Formats one Table 2 row.
    pub fn table2_row(&self, name: &str, real: bool) -> String {
        format!(
            "{name:>8}  {:>9} {:>10}  {:>6} {:>4} {:>8}  {:>5.2} {:>5.2}",
            self.n,
            self.m,
            if self.is_skewed() { "Yes" } else { "No" },
            if real { "Yes" } else { "No" },
            if self.symmetric { "No" } else { "Yes" },
            self.alpha,
            self.beta,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn alpha_beta_small_graph() {
        // Nodes: 0 seed, 1 regular, 2 regular, 3 sink.
        // Edges: 0->1 (seed->reg), 1->2 (reg->reg), 2->1 (reg->reg), 2->3 (reg->sink).
        let g = Graph::from_pairs(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let s = StructuralStats::of(&g);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 4);
        assert!((s.alpha - 0.5).abs() < 1e-12);
        assert!((s.beta - 0.5).abs() < 1e-12);
        assert!(!s.symmetric);
    }

    #[test]
    fn fractions_sum_to_one() {
        let g = Graph::from_pairs(6, &[(0, 1), (1, 0), (2, 3), (4, 3)]);
        let s = StructuralStats::of(&g);
        let sum = s.frac_regular + s.frac_seed + s.frac_sink + s.frac_isolated;
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_graph_all_regular() {
        let mut e = crate::EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        e.symmetrize();
        let g = Graph::from_edge_list(&e);
        let s = StructuralStats::of(&g);
        assert_eq!(s.alpha, 1.0);
        assert_eq!(s.beta, 1.0);
        assert!(s.symmetric);
    }

    #[test]
    fn skew_detection_star() {
        // A star: node 0 receives edges from everyone else => extreme skew.
        let n = 100u32;
        let pairs: Vec<_> = (1..n).map(|u| (u, 0)).collect();
        let g = Graph::from_pairs(n as usize, &pairs);
        let s = StructuralStats::of(&g);
        assert!(s.v_hub < 0.05);
        assert!(s.e_hub > 0.99);
        assert!(s.is_skewed());
    }

    #[test]
    fn empty_graph_stats_are_finite() {
        let g = Graph::from_pairs(0, &[]);
        let s = StructuralStats::of(&g);
        assert_eq!(s.n, 0);
        assert!(s.alpha.is_finite() && s.beta.is_finite());
    }
}
