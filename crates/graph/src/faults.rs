//! Deterministic I/O fault injection for robustness testing.
//!
//! [`FaultyReader`] and [`FaultyWriter`] wrap any `Read`/`Write` and apply a
//! [`FaultPlan`]: short reads/writes, `ErrorKind::Interrupted` storms,
//! truncation at byte `k`, and bit flips at chosen offsets. Plans are either
//! built explicitly or derived from a seed, and replaying the same plan over
//! the same stream produces byte-identical behavior — a failing corpus case
//! is always reproducible from `(input, plan)`.
//!
//! The contract under test: whatever the plan does, the readers in
//! [`crate::io`] must return `Err(GraphError)` or succeed — never panic.

use crate::nid;
use std::io::{self, Read, Write};

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Serve I/O in fragments of at most this many bytes.
    ShortChunks(usize),
    /// Fail the next `count` calls with `ErrorKind::Interrupted` before any
    /// byte moves. Well-behaved callers (e.g. `read_exact`) retry through
    /// these; the plan tests that we do too.
    Interrupted { count: u32 },
    /// Present end-of-stream after this many bytes, regardless of how long
    /// the underlying stream really is.
    TruncateAt(u64),
    /// XOR the byte at stream offset `offset` with `mask` as it passes.
    BitFlip { offset: u64, mask: u8 },
}

/// A deterministic schedule of faults applied to a byte stream.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    chunk_limit: Option<usize>,
    interruptions: u32,
    truncate_at: Option<u64>,
    flips: Vec<(u64, u8)>,
}

impl FaultPlan {
    /// A plan with no faults: the wrapper becomes a transparent adapter.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Builds a plan from explicit faults (later entries override earlier
    /// ones of the same kind; bit flips accumulate).
    pub fn from_faults(faults: impl IntoIterator<Item = Fault>) -> Self {
        let mut plan = Self::default();
        for f in faults {
            match f {
                Fault::ShortChunks(limit) => plan.chunk_limit = Some(limit.max(1)),
                Fault::Interrupted { count } => plan.interruptions = count,
                Fault::TruncateAt(k) => plan.truncate_at = Some(k),
                Fault::BitFlip { offset, mask } => plan.flips.push((offset, mask)),
            }
        }
        plan.flips.sort_unstable();
        plan
    }

    /// Derives a pseudo-random plan from a seed: fragmented I/O, a burst of
    /// interruptions, one bit flip, and (for odd seeds) truncation somewhere
    /// in the first `stream_len` bytes.
    pub fn from_seed(seed: u64, stream_len: u64) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let len = stream_len.max(1);
        let mut faults = vec![
            Fault::ShortChunks(1 + (next() % 7) as usize),
            Fault::Interrupted {
                count: nid((next() % 4) as usize),
            },
            Fault::BitFlip {
                offset: next() % len,
                mask: 1 << (next() % 8),
            },
        ];
        if seed % 2 == 1 {
            faults.push(Fault::TruncateAt(next() % len));
        }
        Self::from_faults(faults)
    }

    /// Truncate the stream at byte `k`, with no other faults.
    pub fn truncate_at(k: u64) -> Self {
        Self::from_faults([Fault::TruncateAt(k)])
    }

    /// Flip one bit at `offset`, with no other faults.
    pub fn bit_flip(offset: u64, bit: u8) -> Self {
        Self::from_faults([Fault::BitFlip {
            offset,
            mask: 1 << (bit % 8),
        }])
    }

    /// Fragmented writes of at most `max_chunk` bytes per call — the
    /// short-write plan for checkpoint writers, which must loop until every
    /// byte lands rather than assume one `write` suffices.
    pub fn short_writes(max_chunk: usize) -> Self {
        Self::from_faults([Fault::ShortChunks(max_chunk)])
    }

    /// The disk fills after `k` bytes: every later write is accepted as
    /// `Ok(0)`, which `write_all` surfaces as `ErrorKind::WriteZero`. A
    /// checkpoint writer hitting this must fail typed and leave no torn
    /// file at the final path.
    pub fn disk_full_at(k: u64) -> Self {
        Self::from_faults([Fault::TruncateAt(k)])
    }

    /// Models a torn rename: only the first `k` bytes of the checkpoint
    /// made it to the final path before the crash. Readers must reject the
    /// half-written file with a typed error (truncation or checksum),
    /// never a panic. Byte-wise this is [`FaultPlan::truncate_at`]; the
    /// separate constructor names the scenario the checkpoint corpus
    /// exercises.
    pub fn torn_rename(k: u64) -> Self {
        Self::from_faults([Fault::TruncateAt(k)])
    }
}

/// Shared cursor state for the reader and writer wrappers.
#[derive(Clone, Debug)]
struct FaultState {
    plan: FaultPlan,
    pos: u64,
    pending_interruptions: u32,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        let pending_interruptions = plan.interruptions;
        Self {
            plan,
            pos: 0,
            pending_interruptions,
        }
    }

    /// Applies pre-transfer faults; returns the allowed transfer size for a
    /// request of `want` bytes (0 means synthetic EOF).
    fn admit(&mut self, want: usize) -> io::Result<usize> {
        if self.pending_interruptions > 0 {
            self.pending_interruptions -= 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected interruption",
            ));
        }
        let mut allowed = want;
        if let Some(limit) = self.plan.chunk_limit {
            allowed = allowed.min(limit);
        }
        if let Some(cut) = self.plan.truncate_at {
            let remaining = cut.saturating_sub(self.pos);
            allowed = allowed.min(remaining.min(usize::MAX as u64) as usize);
        }
        Ok(allowed)
    }

    /// Applies bit flips to `buf`, which holds the bytes at stream offsets
    /// `[self.pos, self.pos + buf.len())`, then advances the cursor.
    fn transform(&mut self, buf: &mut [u8]) {
        let start = self.pos;
        let end = start + buf.len() as u64;
        for &(offset, mask) in &self.plan.flips {
            if offset >= start && offset < end {
                buf[(offset - start) as usize] ^= mask;
            }
        }
        self.pos = end;
    }
}

/// A `Read` wrapper that injects the faults of a [`FaultPlan`].
pub struct FaultyReader<R> {
    inner: R,
    state: FaultState,
}

impl<R: Read> FaultyReader<R> {
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        Self {
            inner,
            state: FaultState::new(plan),
        }
    }

    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let allowed = self.state.admit(buf.len())?;
        if allowed == 0 {
            return Ok(0); // synthetic EOF (truncation) or zero-length request
        }
        let n = self.inner.read(&mut buf[..allowed])?;
        self.state.transform(&mut buf[..n]);
        Ok(n)
    }
}

/// A `Write` wrapper that injects the faults of a [`FaultPlan`].
///
/// Truncation surfaces as `Ok(0)`, which `write_all` turns into a
/// `WriteZero` error — mimicking a full disk.
pub struct FaultyWriter<W> {
    inner: W,
    state: FaultState,
}

impl<W: Write> FaultyWriter<W> {
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        Self {
            inner,
            state: FaultState::new(plan),
        }
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let allowed = self.state.admit(buf.len())?;
        if allowed == 0 {
            return Ok(0);
        }
        let mut chunk = buf[..allowed].to_vec();
        let pos_before = self.state.pos;
        self.state.transform(&mut chunk);
        let n = self.inner.write(&chunk)?;
        // If the inner writer accepted fewer bytes than transformed, rewind
        // the cursor so flips beyond the accepted prefix can still apply.
        self.state.pos = pos_before + n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: &[u8] = b"the quick brown fox jumps over the lazy dog";

    fn read_all(mut r: impl Read) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            let mut buf = [0u8; 8];
            match r.read(&mut buf) {
                Ok(0) => return Ok(out),
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    #[test]
    fn clean_plan_is_transparent() {
        let r = FaultyReader::new(DATA, FaultPlan::clean());
        assert_eq!(read_all(r).unwrap(), DATA);
    }

    #[test]
    fn truncation_cuts_the_stream() {
        let r = FaultyReader::new(DATA, FaultPlan::truncate_at(9));
        assert_eq!(read_all(r).unwrap(), &DATA[..9]);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_byte() {
        let r = FaultyReader::new(DATA, FaultPlan::bit_flip(4, 0));
        let got = read_all(r).unwrap();
        assert_eq!(got.len(), DATA.len());
        assert_eq!(got[4], DATA[4] ^ 1);
        let diffs = got.iter().zip(DATA).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn interruptions_are_survivable_and_finite() {
        let plan = FaultPlan::from_faults([Fault::Interrupted { count: 3 }]);
        let r = FaultyReader::new(DATA, plan);
        assert_eq!(read_all(r).unwrap(), DATA);
    }

    #[test]
    fn short_chunks_still_deliver_everything() {
        let plan = FaultPlan::from_faults([Fault::ShortChunks(1)]);
        let r = FaultyReader::new(DATA, plan);
        assert_eq!(read_all(r).unwrap(), DATA);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..20 {
            let a = FaultPlan::from_seed(seed, DATA.len() as u64);
            let ra = FaultyReader::new(DATA, a);
            let rb = FaultyReader::new(DATA, FaultPlan::from_seed(seed, DATA.len() as u64));
            assert_eq!(read_all(ra).unwrap(), read_all(rb).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn writer_truncation_surfaces_as_write_zero() {
        let mut sink = Vec::new();
        let mut w = FaultyWriter::new(&mut sink, FaultPlan::truncate_at(5));
        let err = w.write_all(DATA).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(sink, &DATA[..5]);
    }

    #[test]
    fn writer_bit_flip_lands_at_offset() {
        let mut sink = Vec::new();
        {
            let mut w = FaultyWriter::new(&mut sink, FaultPlan::bit_flip(2, 7));
            w.write_all(DATA).unwrap();
        }
        assert_eq!(sink[2], DATA[2] ^ 0x80);
    }
}
