//! Typed errors for the whole Mixen workspace.
//!
//! Every fallible path in ingestion, validation, and supervised execution
//! surfaces a [`GraphError`] instead of panicking; see DESIGN.md §"Error
//! handling & degradation contract" for the full taxonomy.

use std::fmt;
use std::io;

/// Result alias used across the workspace for graph-related fallible APIs.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Everything that can go wrong while ingesting, validating, or running a
/// graph workload.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure (missing file, truncated stream, permission).
    Io(io::Error),
    /// The container is not a recognized Mixen format (bad magic, bad
    /// version, malformed header).
    Format(String),
    /// A text edge list failed to parse; `line` is 1-based.
    Parse { line: usize, msg: String },
    /// A structural CSR invariant does not hold (non-monotone `ptr`,
    /// out-of-range `idx`, length mismatch).
    Invariant(String),
    /// An untrusted size declaration exceeds what this build will allocate.
    Capacity {
        what: &'static str,
        requested: u64,
        limit: u64,
    },
    /// Payload checksum mismatch: the bytes were damaged in storage or
    /// transit.
    Checksum { stored: u32, computed: u32 },
    /// A supervised run detected NaN/Inf values or divergence.
    Numeric { iteration: usize, msg: String },
    /// A supervised run exceeded its wall-clock deadline. The run stops at
    /// the next batch boundary; if checkpointing is enabled the last state
    /// is durable, so the run can be resumed with a fresh budget.
    Deadline { elapsed_ms: u64, budget_ms: u64 },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Format(msg) => write!(f, "format error: {msg}"),
            GraphError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            GraphError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            GraphError::Capacity {
                what,
                requested,
                limit,
            } => write!(
                f,
                "capacity exceeded: {what} declares {requested}, limit is {limit}"
            ),
            GraphError::Checksum { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            GraphError::Numeric { iteration, msg } => {
                write!(f, "numeric fault at iteration {iteration}: {msg}")
            }
            GraphError::Deadline {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed against a budget of {budget_ms} ms"
            ),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl GraphError {
    /// True for failures worth retrying (transient I/O), false for anything
    /// deterministic (a corrupt file stays corrupt).
    pub fn is_transient(&self) -> bool {
        match self {
            GraphError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ResourceBusy
            ),
            _ => false,
        }
    }

    /// Short machine-friendly tag for logs and CLI messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            GraphError::Io(_) => "io",
            GraphError::Format(_) => "format",
            GraphError::Parse { .. } => "parse",
            GraphError::Invariant(_) => "invariant",
            GraphError::Capacity { .. } => "capacity",
            GraphError::Checksum { .. } => "checksum",
            GraphError::Numeric { .. } => "numeric",
            GraphError::Deadline { .. } => "deadline",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = GraphError::Capacity {
            what: "node count",
            requested: 1 << 40,
            limit: 1 << 31,
        };
        let s = e.to_string();
        assert!(s.contains("node count"), "{s}");
        assert!(s.contains(&(1u64 << 40).to_string()), "{s}");

        let e = GraphError::Parse {
            line: 7,
            msg: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: GraphError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert_eq!(e.kind_name(), "io");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn transience_classification() {
        let t: GraphError = io::Error::new(io::ErrorKind::Interrupted, "sig").into();
        assert!(t.is_transient());
        let p: GraphError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(!p.is_transient());
        assert!(!GraphError::Format("x".into()).is_transient());
    }
}
