//! Graph serialization.
//!
//! * A compact binary CSR format (`MXG1`) mirroring the paper's setup, where
//!   GPOP and Mixen ingest a prebuilt CSR binary directly (§6.5 / Table 4).
//! * A whitespace text edge-list format (`src dst` per line, `#` comments)
//!   matching what Ligra/Polymer/GraphMat-style frameworks convert from.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Csr, EdgeList, Graph, NodeId};

const MAGIC: &[u8; 4] = b"MXG1";

/// Writes the out-CSR of `g` in the binary `MXG1` format.
pub fn write_csr<W: Write>(g: &Graph, w: &mut W) -> io::Result<()> {
    let csr = g.out_csr();
    w.write_all(MAGIC)?;
    w.write_all(&(csr.n_rows() as u64).to_le_bytes())?;
    w.write_all(&(csr.nnz() as u64).to_le_bytes())?;
    for &p in csr.ptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &v in csr.idx() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a binary `MXG1` graph; the in-CSC is rebuilt by transposition.
pub fn read_csr<R: Read>(r: &mut R) -> io::Result<Graph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic: not an MXG1 file",
        ));
    }
    let n = read_u64(r)? as usize;
    let m = read_u64(r)? as usize;
    let mut ptr = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        ptr.push(read_u64(r)? as usize);
    }
    let mut idx = Vec::with_capacity(m);
    let mut buf = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf)?;
        idx.push(NodeId::from_le_bytes(buf));
    }
    let csr = Csr::from_parts(n, ptr, idx);
    Ok(Graph::from_csr(csr))
}

/// Writes `g` to a file in binary CSR format.
pub fn save(g: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_csr(g, &mut w)?;
    w.flush()
}

/// Loads a binary CSR graph from a file.
pub fn load(path: impl AsRef<Path>) -> io::Result<Graph> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    read_csr(&mut r)
}

/// Writes a text edge list (`src dst` per line).
pub fn write_edge_list<W: Write>(g: &Graph, w: &mut W) -> io::Result<()> {
    writeln!(w, "# mixen edge list: n={} m={}", g.n(), g.m())?;
    for (s, d) in g.edges() {
        writeln!(w, "{s} {d}")?;
    }
    Ok(())
}

/// Parses a text edge list. Node count is `max endpoint + 1` unless a larger
/// `min_n` is given or the header comment declares `n=<count>` (which
/// [`write_edge_list`] emits, so trailing isolated nodes round-trip).
pub fn read_edge_list<R: BufRead>(r: R, min_n: usize) -> io::Result<Graph> {
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_node = 0u32;
    let mut min_n = min_n;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            // Recover the declared node count from the header, if present.
            if let Some(decl) = line.split_whitespace().find_map(|tok| {
                tok.strip_prefix("n=").and_then(|v| v.parse::<usize>().ok())
            }) {
                min_n = min_n.max(decl);
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse::<u32>()
                .map_err(|_| bad_line(lineno))
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        max_node = max_node.max(s).max(d);
        pairs.push((s, d));
    }
    let n = if pairs.is_empty() {
        min_n
    } else {
        (max_node as usize + 1).max(min_n)
    };
    Ok(Graph::from_edge_list(&EdgeList::from_pairs(n, pairs)))
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge on line {}", lineno + 1),
    )
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_pairs(5, &[(0, 1), (0, 2), (1, 2), (3, 0), (2, 4)])
    }

    #[test]
    fn binary_roundtrip() {
        let g = toy();
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let back = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        assert_eq!(g.in_csc(), back.in_csc());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_csr(&mut &b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = toy();
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let g = toy();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
    }

    #[test]
    fn text_handles_comments_blanks_and_min_n() {
        let text = "# header\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 10).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn text_roundtrip_keeps_trailing_isolated_nodes() {
        // Node 4 has no edges; the n= header must preserve it.
        let g = Graph::from_pairs(5, &[(0, 1), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(g.out_csr(), back.out_csr());
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes(), 0).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn file_save_load() {
        let dir = std::env::temp_dir().join("mixen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.mxg");
        let g = toy();
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::from_pairs(0, &[]);
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let back = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(back.n(), 0);
        assert_eq!(back.m(), 0);
    }
}
