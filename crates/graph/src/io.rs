//! Graph serialization.
//!
//! * A compact binary CSR format mirroring the paper's setup, where GPOP and
//!   Mixen ingest a prebuilt CSR binary directly (§6.5 / Table 4). Two
//!   versions exist:
//!   * `MXG1` (legacy): `magic | n:u64 | m:u64 | ptr[(n+1)×u64] | idx[m×u32]`,
//!     all little-endian, no integrity check. Still readable and writable
//!     (via [`write_csr_v1`]) for compatibility with seed-era files.
//!   * `MXG2` (current): same payload, preceded by a CRC-32/IEEE checksum of
//!     the payload bytes: `magic | n:u64 | m:u64 | crc32:u32 | payload`.
//!     [`write_csr`] emits this; [`read_csr`] verifies the checksum.
//! * A whitespace text edge-list format (`src dst` per line, `#` comments)
//!   matching what Ligra/Polymer/GraphMat-style frameworks convert from.
//!
//! All readers treat their input as untrusted: sizes declared in headers are
//! capped before any allocation, every `u64 → usize` cast is checked, and
//! every failure surfaces as a typed [`GraphError`] — never a panic.

use crate::nid;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{GraphError, Result};
use crate::{Csr, EdgeList, Graph, NodeId};

const MAGIC_V1: &[u8; 4] = b"MXG1";
const MAGIC_V2: &[u8; 4] = b"MXG2";

/// Hard cap on node counts accepted from untrusted headers. Node IDs are
/// `u32`, and the paper's largest graphs stay well under 2^31 nodes.
pub const MAX_NODES: u64 = 1 << 31;

/// Hard cap on edge counts accepted from untrusted headers (512 G edges —
/// an order of magnitude above the largest public web crawls).
pub const MAX_EDGES: u64 = 1 << 39;

/// Incremental-read chunk bound: never pre-allocate more than this many
/// elements on the say-so of a header; grow as bytes actually arrive.
const ALLOC_CHUNK: usize = 1 << 20;

// ---------------------------------------------------------------------------
// CRC-32/IEEE (the zlib/PNG polynomial), table-driven, no dependencies.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = nid(i);
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32/IEEE over `bytes` (init `!0`, final xor `!0`), resumable via
/// [`Crc32::update`].
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(!0)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let table = crc32_table();
        for &b in bytes {
            self.0 = table[((self.0 ^ u32::from(b)) & 0xFF) as usize] ^ (self.0 >> 8);
        }
    }

    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the CRC-32 of a byte slice in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// `Read` adapter that folds every byte it passes through into a CRC-32.
struct Crc32Reader<'a, R> {
    inner: &'a mut R,
    crc: Crc32,
}

impl<'a, R: Read> Crc32Reader<'a, R> {
    fn new(inner: &'a mut R) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }
}

impl<R: Read> Read for Crc32Reader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Binary CSR
// ---------------------------------------------------------------------------

/// Writes the out-CSR of `g` in the current binary format (`MXG2`,
/// checksummed). Use [`write_csr_v1`] for the legacy format.
pub fn write_csr<W: Write>(g: &Graph, w: &mut W) -> io::Result<()> {
    let csr = g.out_csr();
    // First pass over the payload computes the checksum so the header can be
    // written up front without buffering the payload.
    let checksum = graph_checksum(g);

    w.write_all(MAGIC_V2)?;
    w.write_all(&(csr.n_rows() as u64).to_le_bytes())?;
    w.write_all(&(csr.nnz() as u64).to_le_bytes())?;
    w.write_all(&checksum.to_le_bytes())?;
    for &p in csr.ptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &v in csr.idx() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// CRC-32/IEEE over the MXG2 payload of `g`'s out-CSR (row pointers as
/// `u64` LE followed by column indices as `u32` LE) — the exact checksum
/// [`write_csr`] stores in the header. Exposed so checkpoints can pin the
/// graph they were computed from and reject stale resumes.
pub fn graph_checksum(g: &Graph) -> u32 {
    let csr = g.out_csr();
    let mut crc = Crc32::new();
    for &p in csr.ptr() {
        crc.update(&(p as u64).to_le_bytes());
    }
    for &v in csr.idx() {
        crc.update(&v.to_le_bytes());
    }
    crc.finish()
}

/// Writes the out-CSR of `g` in the legacy `MXG1` format (no checksum),
/// byte-identical to what the seed code produced.
pub fn write_csr_v1<W: Write>(g: &Graph, w: &mut W) -> io::Result<()> {
    let csr = g.out_csr();
    w.write_all(MAGIC_V1)?;
    w.write_all(&(csr.n_rows() as u64).to_le_bytes())?;
    w.write_all(&(csr.nnz() as u64).to_le_bytes())?;
    for &p in csr.ptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &v in csr.idx() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a binary graph in either `MXG1` (legacy, unchecksummed) or `MXG2`
/// (checksummed) format; the in-CSC is rebuilt by transposition.
pub fn read_csr<R: Read>(r: &mut R) -> Result<Graph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(GraphError::Io)?;
    let versioned = match &magic {
        m if m == MAGIC_V1 => false,
        m if m == MAGIC_V2 => true,
        _ => {
            return Err(GraphError::Format(format!(
                "bad magic {:02x?}: not an MXG1/MXG2 file",
                magic
            )))
        }
    };
    let n64 = read_u64(r)?;
    let m64 = read_u64(r)?;
    if n64 >= MAX_NODES {
        return Err(GraphError::Capacity {
            what: "node count",
            requested: n64,
            limit: MAX_NODES,
        });
    }
    if m64 >= MAX_EDGES {
        return Err(GraphError::Capacity {
            what: "edge count",
            requested: m64,
            limit: MAX_EDGES,
        });
    }
    let n = checked_usize(n64, "node count")?;
    let m = checked_usize(m64, "edge count")?;

    let (csr, stored, computed) = if versioned {
        let stored = read_u32(r)?;
        let mut cr = Crc32Reader::new(r);
        let csr = read_payload(&mut cr, n, m)?;
        (csr, Some(stored), cr.crc.finish())
    } else {
        (read_payload(r, n, m)?, None, 0)
    };
    if let Some(stored) = stored {
        if stored != computed {
            return Err(GraphError::Checksum { stored, computed });
        }
    }
    Ok(Graph::from_csr(csr))
}

/// Reads `ptr` and `idx` incrementally — allocation grows with bytes that
/// actually arrive, never in one jump from the untrusted header — and
/// validates every CSR invariant before construction.
fn read_payload<R: Read>(r: &mut R, n: usize, m: usize) -> Result<Csr> {
    let mut ptr = Vec::with_capacity((n + 1).min(ALLOC_CHUNK));
    for _ in 0..=n {
        ptr.push(checked_usize(read_u64(r)?, "row pointer")?);
    }
    let mut idx = Vec::with_capacity(m.min(ALLOC_CHUNK));
    let mut buf = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf).map_err(GraphError::Io)?;
        idx.push(NodeId::from_le_bytes(buf));
    }
    Csr::try_from_parts(n, ptr, idx)
}

/// Writes `g` to a file in the current binary CSR format.
pub fn save(g: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_csr(g, &mut w)?;
    w.flush()
}

/// Loads a binary CSR graph (`MXG1` or `MXG2`) from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Graph> {
    let mut r = BufReader::new(std::fs::File::open(path).map_err(GraphError::Io)?);
    read_csr(&mut r)
}

// ---------------------------------------------------------------------------
// Text edge list
// ---------------------------------------------------------------------------

/// Writes a text edge list (`src dst` per line).
pub fn write_edge_list<W: Write>(g: &Graph, w: &mut W) -> io::Result<()> {
    writeln!(w, "# mixen edge list: n={} m={}", g.n(), g.m())?;
    for (s, d) in g.edges() {
        writeln!(w, "{s} {d}")?;
    }
    Ok(())
}

/// Parses a text edge list with the default node-count cap ([`MAX_NODES`]).
/// Node count is `max endpoint + 1` unless a larger `min_n` is given or the
/// header comment declares `n=<count>` (which [`write_edge_list`] emits, so
/// trailing isolated nodes round-trip).
pub fn read_edge_list<R: BufRead>(r: R, min_n: usize) -> Result<Graph> {
    read_edge_list_capped(r, min_n, MAX_NODES)
}

/// [`read_edge_list`] with a configurable cap on the `n=` header
/// declaration. A declaration above `max_nodes`, a duplicate declaration,
/// or one that overflows `u64` is reported with its line number.
pub fn read_edge_list_capped<R: BufRead>(r: R, min_n: usize, max_nodes: u64) -> Result<Graph> {
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_node = 0u32;
    let mut min_n = min_n;
    let mut declared_on: Option<usize> = None;
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(GraphError::Io)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            // Recover the declared node count from the header, if present.
            // Only all-digit `n=` tokens count as declarations; anything
            // else is ordinary comment text.
            let decl_tok = line.split_whitespace().find_map(|tok| {
                tok.strip_prefix("n=")
                    .filter(|v| !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit()))
            });
            if let Some(digits) = decl_tok {
                let decl = digits.parse::<u64>().map_err(|_| GraphError::Parse {
                    line: lineno + 1,
                    msg: format!("node count declaration n={digits} overflows u64"),
                })?;
                if decl > max_nodes {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        msg: format!(
                            "node count declaration n={decl} exceeds the cap of {max_nodes}"
                        ),
                    });
                }
                if let Some(first) = declared_on {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        msg: format!("duplicate n= declaration (first on line {first})"),
                    });
                }
                declared_on = Some(lineno + 1);
                min_n = min_n.max(decl as usize);
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse::<u32>()
                .map_err(|_| bad_line(lineno))
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        if it.next().is_some() {
            return Err(bad_line(lineno));
        }
        max_node = max_node.max(s).max(d);
        pairs.push((s, d));
    }
    let n = if pairs.is_empty() {
        min_n
    } else {
        (max_node as usize + 1).max(min_n)
    };
    if n as u64 > max_nodes {
        return Err(GraphError::Capacity {
            what: "node count",
            requested: n as u64,
            limit: max_nodes,
        });
    }
    Ok(Graph::from_edge_list(&EdgeList::from_pairs(n, pairs)))
}

fn bad_line(lineno: usize) -> GraphError {
    GraphError::Parse {
        line: lineno + 1,
        msg: "malformed edge".into(),
    }
}

fn checked_usize(v: u64, what: &'static str) -> Result<usize> {
    usize::try_from(v).map_err(|_| GraphError::Capacity {
        what,
        requested: v,
        limit: usize::MAX as u64,
    })
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(GraphError::Io)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(GraphError::Io)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        Graph::from_pairs(5, &[(0, 1), (0, 2), (1, 2), (3, 0), (2, 4)])
    }

    #[test]
    fn binary_roundtrip() {
        let g = toy();
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        assert_eq!(&buf[..4], MAGIC_V2);
        let back = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        assert_eq!(g.in_csc(), back.in_csc());
    }

    #[test]
    fn legacy_v1_roundtrip() {
        let g = toy();
        let mut buf = Vec::new();
        write_csr_v1(&g, &mut buf).unwrap();
        assert_eq!(&buf[..4], MAGIC_V1);
        let back = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_csr(&mut &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)), "{err}");
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = toy();
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_csr(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)), "{err}");
    }

    #[test]
    fn binary_rejects_flipped_payload_bit() {
        let g = toy();
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x04;
        let err = read_csr(&mut buf.as_slice()).unwrap_err();
        // A flipped bit either breaks an invariant (if it pushes an index
        // out of range) or — the interesting case — is caught by the CRC.
        assert!(
            matches!(err, GraphError::Checksum { .. } | GraphError::Invariant(_)),
            "{err}"
        );
    }

    #[test]
    fn binary_rejects_absurd_header_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        buf.extend_from_slice(&0u64.to_le_bytes()); // m
        let err = read_csr(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, GraphError::Capacity { .. }), "{err}");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn text_roundtrip() {
        let g = toy();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
    }

    #[test]
    fn text_handles_comments_blanks_and_min_n() {
        let text = "# header\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 10).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn text_roundtrip_keeps_trailing_isolated_nodes() {
        // Node 4 has no edges; the n= header must preserve it.
        let g = Graph::from_pairs(5, &[(0, 1), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(g.out_csr(), back.out_csr());
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes(), 0).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn text_rejects_oversized_declaration() {
        let text = format!("# n={}\n0 1\n", u64::from(u32::MAX) + 10);
        let err = read_edge_list(text.as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn text_rejects_duplicate_declaration() {
        let err = read_edge_list("# n=5\n# n=7\n0 1\n".as_bytes(), 0).unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("duplicate"), "{msg}");
                assert!(msg.contains("line 1"), "{msg}");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn text_ignores_non_numeric_n_tokens_in_comments() {
        let g = read_edge_list("# note: n=lots of nodes\n0 1\n".as_bytes(), 0).unwrap();
        assert_eq!(g.n(), 2);
    }

    #[test]
    fn file_save_load() {
        let dir = std::env::temp_dir().join("mixen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.mxg");
        let g = toy();
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load("/definitely/not/here.mxg").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)), "{err}");
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::from_pairs(0, &[]);
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let back = read_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(back.n(), 0);
        assert_eq!(back.m(), 0);
    }
}
