//! Weighted graphs: the general-SpMV substrate.
//!
//! The paper treats InDegree as `y = Aᵀx` over a 0/1 adjacency (§1) and
//! cites the graph–matrix duality (§7, Kepner & Gilbert); this module adds
//! the general case — a weight per edge — so the same engines can run
//! weighted SpMV (`y[v] = Σ w(u,v)·x[u]`) and, through the tropical
//! semiring, shortest paths.
//!
//! Representation: a [`WGraph`] wraps the unweighted [`Graph`] topology
//! (so all structural machinery — classification, filtering, blocking —
//! applies unchanged) plus two weight arrays aligned index-for-index with
//! the out-CSR and in-CSC adjacency arrays.
//!
//! Weighted graphs are kept *simple*: [`WGraph::from_triples`] sums the
//! weights of duplicate edges, because per-edge weight alignment is
//! ambiguous under multi-edges.

use crate::nid;
use rayon::prelude::*;

use crate::{Csr, Graph, NodeId};

/// A directed graph with one `f32` weight per edge.
#[derive(Clone, Debug)]
pub struct WGraph {
    g: Graph,
    /// Weight of out-edge `i` (aligned with `g.out_csr().idx()[i]`).
    wout: Box<[f32]>,
    /// Weight of in-edge `i` (aligned with `g.in_csc().idx()[i]`).
    win: Box<[f32]>,
}

impl WGraph {
    /// Builds from `(src, dst, weight)` triples. Duplicate edges are merged
    /// by *summing* their weights; self-loops are kept.
    pub fn from_triples(n: usize, triples: &[(NodeId, NodeId, f32)]) -> Self {
        let mut sorted: Vec<(NodeId, NodeId, f32)> = triples.to_vec();
        sorted.par_sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        // Merge duplicates.
        let mut merged: Vec<(NodeId, NodeId, f32)> = Vec::with_capacity(sorted.len());
        for t in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == t.0 && last.1 == t.1 => last.2 += t.2,
                _ => merged.push(t),
            }
        }
        let pairs: Vec<(NodeId, NodeId)> = merged.iter().map(|&(s, d, _)| (s, d)).collect();
        let out = Csr::from_edges(n, &pairs);
        // `merged` is sorted exactly like the CSR layout (row-major, columns
        // ascending, no duplicates), so weights align 1:1.
        let wout: Box<[f32]> = merged.iter().map(|&(_, _, w)| w).collect();
        let inn = out.transpose();
        // Align in-weights by looking each transposed edge up in `merged`.
        let win = align_weights(&inn, &merged, true);
        Self {
            g: Graph::from_parts(out, inn),
            wout,
            win,
        }
    }

    /// Attaches weights to an existing (simple) graph via `weight(u, v)`.
    /// Panics if the graph has duplicate edges.
    pub fn from_graph(g: &Graph, weight: impl Fn(NodeId, NodeId) -> f32 + Sync) -> Self {
        let triples: Vec<(NodeId, NodeId, f32)> =
            g.edges().map(|(u, v)| (u, v, weight(u, v))).collect();
        let w = Self::from_triples(g.n(), &triples);
        assert_eq!(
            w.m(),
            g.m(),
            "from_graph requires a simple graph (no duplicate edges)"
        );
        w
    }

    /// Deterministic pseudo-random weights in `[lo, hi)` keyed by the edge
    /// endpoints — the stand-in for edge attributes of real datasets.
    pub fn with_hash_weights(g: &Graph, lo: f32, hi: f32, seed: u64) -> Self {
        Self::from_graph(g, |u, v| {
            let mut z = (u as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((v as u64) << 32)
                .wrapping_add(seed);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            lo + (hi - lo) * ((z >> 40) as f32 / (1u64 << 24) as f32)
        })
    }

    /// The unweighted topology.
    pub fn topology(&self) -> &Graph {
        &self.g
    }

    /// Node count.
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// Edge count.
    pub fn m(&self) -> usize {
        self.g.m()
    }

    /// Out-neighbours of `u` with their weights.
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f32)> + '_ {
        let lo = self.g.out_csr().ptr()[u as usize];
        let hi = self.g.out_csr().ptr()[u as usize + 1];
        self.g.out_csr().idx()[lo..hi]
            .iter()
            .zip(&self.wout[lo..hi])
            .map(|(&v, &w)| (v, w))
    }

    /// In-neighbours of `v` with their weights.
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f32)> + '_ {
        let lo = self.g.in_csc().ptr()[v as usize];
        let hi = self.g.in_csc().ptr()[v as usize + 1];
        self.g.in_csc().idx()[lo..hi]
            .iter()
            .zip(&self.win[lo..hi])
            .map(|(&u, &w)| (u, w))
    }

    /// The out-aligned weight slice.
    pub fn out_weights(&self) -> &[f32] {
        &self.wout
    }

    /// The in-aligned weight slice.
    pub fn in_weights(&self) -> &[f32] {
        &self.win
    }

    /// Weight of the edge `u -> v`, if present.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<f32> {
        let lo = self.g.out_csr().ptr()[u as usize];
        let row = self.g.out_neighbors(u);
        row.binary_search(&v).ok().map(|i| self.wout[lo + i])
    }

    /// Heap bytes including the weight arrays.
    pub fn memory_bytes(&self) -> usize {
        self.g.memory_bytes() + (self.wout.len() + self.win.len()) * std::mem::size_of::<f32>()
    }
}

/// Aligns a weight per `csr` entry by looking `(row, col)` (or `(col, row)`
/// when `transposed`) up in the sorted, deduplicated triple list.
fn align_weights(csr: &Csr, sorted: &[(NodeId, NodeId, f32)], transposed: bool) -> Box<[f32]> {
    let find = |s: NodeId, d: NodeId| -> f32 {
        let key = (s, d);
        let i = sorted.partition_point(|&(a, b, _)| (a, b) < key);
        debug_assert!(i < sorted.len() && (sorted[i].0, sorted[i].1) == key);
        sorted[i].2
    };
    (0..nid(csr.n_rows()))
        .into_par_iter()
        .flat_map_iter(|row| {
            csr.neighbors(row)
                .iter()
                .map(move |&col| {
                    if transposed {
                        find(col, row)
                    } else {
                        find(row, col)
                    }
                })
                .collect::<Vec<f32>>()
        })
        .collect::<Vec<f32>>()
        .into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> WGraph {
        WGraph::from_triples(
            4,
            &[
                (0, 1, 2.0),
                (0, 2, 3.0),
                (2, 1, 0.5),
                (3, 3, 1.0),
                (1, 0, 4.0),
            ],
        )
    }

    #[test]
    fn out_and_in_edges_carry_weights() {
        let w = toy();
        let out0: Vec<(u32, f32)> = w.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 2.0), (2, 3.0)]);
        let in1: Vec<(u32, f32)> = w.in_edges(1).collect();
        assert_eq!(in1, vec![(0, 2.0), (2, 0.5)]);
        assert_eq!(w.weight(3, 3), Some(1.0));
        assert_eq!(w.weight(1, 3), None);
    }

    #[test]
    fn duplicate_edges_merge_by_sum() {
        let w = WGraph::from_triples(2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(w.m(), 1);
        assert_eq!(w.weight(0, 1), Some(3.5));
    }

    #[test]
    fn in_weights_match_out_weights_per_edge() {
        let w = toy();
        for u in 0..w.n() as NodeId {
            for (v, wt) in w.out_edges(u) {
                let found = w
                    .in_edges(v)
                    .find(|&(src, _)| src == u)
                    .map(|(_, x)| x)
                    .unwrap();
                assert_eq!(found, wt, "edge {u}->{v}");
            }
        }
    }

    #[test]
    fn hash_weights_deterministic_and_in_range() {
        let g = Graph::from_pairs(50, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let a = WGraph::with_hash_weights(&g, 1.0, 5.0, 7);
        let b = WGraph::with_hash_weights(&g, 1.0, 5.0, 7);
        for u in 0..g.n() as NodeId {
            let wa: Vec<(u32, f32)> = a.out_edges(u).collect();
            let wb: Vec<(u32, f32)> = b.out_edges(u).collect();
            assert_eq!(wa, wb);
            for (_, w) in wa {
                assert!((1.0..5.0).contains(&w));
            }
        }
    }

    #[test]
    #[should_panic(expected = "simple graph")]
    fn from_graph_rejects_multi_edges() {
        let g = Graph::from_pairs(2, &[(0, 1), (0, 1)]);
        let _ = WGraph::from_graph(&g, |_, _| 1.0);
    }

    #[test]
    fn topology_matches() {
        let w = toy();
        assert_eq!(w.n(), 4);
        assert_eq!(w.m(), 5);
        assert_eq!(w.topology().out_neighbors(0), &[1, 2]);
        w.topology().validate().unwrap();
    }

    #[test]
    fn memory_includes_weights() {
        let w = toy();
        assert_eq!(
            w.memory_bytes(),
            w.topology().memory_bytes() + 2 * w.m() * 4
        );
    }
}
