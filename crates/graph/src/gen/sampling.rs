//! Weighted sampling utilities.
//!
//! The profile generator draws millions of endpoints from power-law weight
//! distributions; Walker's alias method gives O(1) draws after O(n) setup,
//! which keeps dataset generation off the critical path (the paper's
//! preprocessing measurements must not be polluted by slow generation).

use crate::nid;
use rand::Rng;

/// Walker alias table for O(1) sampling from a discrete distribution.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized). Panics if all weights are zero or the slice is empty.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table needs positive total weight");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be finite and non-negative"
        );
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(nid(i));
            } else {
                large.push(nid(i));
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            let leftover = prob[l as usize] + prob[s as usize] - 1.0;
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers land exactly at probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never constructible — kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index according to the weights.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            nid(i)
        } else {
            self.alias[i]
        }
    }
}

/// Zipf-like weights `w_i = 1 / (i + 1)^theta` over `n` outcomes. `theta = 0`
/// degenerates to uniform; larger values concentrate mass on low indices
/// (the hub positions of the profile generator).
pub fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[8.0, 1.0, 1.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        let f0 = counts[0] as f64 / 50_000.0;
        assert!((f0 - 0.8).abs() < 0.02, "f0 = {f0}");
    }

    #[test]
    fn zero_weight_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[0.5]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_weights_monotone() {
        let w = zipf_weights(10, 1.0);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        assert_eq!(w[0], 1.0);
        let u = zipf_weights(5, 0.0);
        assert!(u.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }
}
