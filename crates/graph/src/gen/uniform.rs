//! Uniform-random undirected graph (the paper's *urand*, GAP's `-u`).

use crate::nid;
use rand::Rng;
use rayon::prelude::*;

use crate::{EdgeList, Graph, NodeId};

/// Generates an undirected uniform-random graph with `n` nodes and roughly
/// `n * degree / 2` undirected edges (each stored in both directions), i.e. a
/// directed edge count near `n * degree`. Every node is guaranteed at least
/// one edge (ring backbone), making all nodes regular as in the paper's
/// Table 1 (urand: 100 % regular).
pub fn uniform(n: usize, degree: usize, seed: u64) -> Graph {
    assert!(n >= 2, "uniform graph needs at least two nodes");
    let target = n * degree / 2;
    const CHUNK: usize = 1 << 16;
    let chunks = target.div_ceil(CHUNK).max(1);
    let mut pairs: Vec<(NodeId, NodeId)> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let lo = chunk * CHUNK;
            let hi = (lo + CHUNK).min(target);
            let mut rng = super::rng(seed.wrapping_add(0xA24B * chunk as u64 + 3));
            (lo..hi)
                .map(move |_| {
                    let s = rng.gen_range(0..nid(n));
                    let mut d = rng.gen_range(0..nid(n) - 1);
                    if d >= s {
                        d += 1; // avoid self-loops without rejection
                    }
                    (s, d)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    // Ring backbone guarantees no isolated nodes.
    pairs.extend((0..nid(n)).map(|u| (u, nid((u as usize + 1) % n))));
    let mut el = EdgeList::from_pairs(n, pairs);
    el.symmetrize();
    Graph::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Classification, NodeClass, StructuralStats};

    #[test]
    fn all_nodes_regular() {
        let g = uniform(500, 16, 11);
        let c = Classification::of(&g);
        assert_eq!(c.count(NodeClass::Regular), 500);
    }

    #[test]
    fn is_symmetric_and_not_skewed() {
        let g = uniform(1000, 16, 12);
        assert!(g.is_symmetric());
        let s = StructuralStats::of(&g);
        assert!(!s.is_skewed());
        assert_eq!(s.alpha, 1.0);
        assert_eq!(s.beta, 1.0);
    }

    #[test]
    fn degree_near_target() {
        let g = uniform(2000, 20, 13);
        let avg = g.avg_degree();
        assert!((avg - 20.0).abs() < 3.0, "avg = {avg}");
    }

    #[test]
    fn deterministic() {
        let a = uniform(128, 8, 5);
        let b = uniform(128, 8, 5);
        assert_eq!(a.out_csr(), b.out_csr());
    }

    #[test]
    fn no_self_loops() {
        let g = uniform(300, 10, 17);
        for u in 0..g.n() as u32 {
            assert!(!g.out_neighbors(u).contains(&u));
        }
    }
}
