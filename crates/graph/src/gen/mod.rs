//! Deterministic graph generators.
//!
//! Every generator takes an explicit seed and produces identical output for
//! identical parameters, so experiments are reproducible run-to-run. The
//! synthetic generators here stand in for the paper's datasets:
//!
//! * [`rmat`] / [`kronecker`] — the GAP-style recursive generators the paper
//!   uses for its *rmat* and *kron* graphs, with the same parameters.
//! * [`uniform`] — the *urand* uniform-random undirected graph.
//! * [`road`] — a 2-D lattice with road-network characteristics (low, even
//!   degree; enormous diameter; high locality).
//! * [`generate_profile`] — a class-and-skew-targeting generator that reproduces the
//!   published structure (Table 1/2) of the crawled graphs weibo, track,
//!   wiki and pld, which are not redistributable at size.

mod profile;
mod rmat;
mod road;
mod sampling;
mod uniform;

pub use profile::{generate_profile, ProfileSpec};
pub use rmat::{kronecker, rmat, RmatParams};
pub use road::road;
pub use sampling::AliasTable;
pub use uniform::uniform;

use crate::nid;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the crate-standard deterministic RNG from a seed.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Produces a deterministic pseudo-random permutation of `0..n` used to
/// scramble generator output, so that downstream relabeling (Mixen's filter
/// step) has real work to do instead of receiving class-contiguous IDs.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    use rand::seq::SliceRandom;
    let mut perm: Vec<u32> = (0..nid(n)).collect();
    perm.shuffle(&mut rng(seed ^ 0x9e37_79b9_7f4a_7c15));
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijective() {
        let p = random_permutation(1000, 7);
        let mut seen = vec![false; 1000];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn permutation_deterministic() {
        assert_eq!(random_permutation(64, 3), random_permutation(64, 3));
        assert_ne!(random_permutation(64, 3), random_permutation(64, 4));
    }
}
