//! Road-network stand-in: a 2-D lattice with sparse extra links.
//!
//! The paper's *road* graph (KONECT) is undirected, non-skewed, entirely
//! regular, with a low maximum degree (~avg 2.4 per direction) and a very
//! large diameter — the combination that makes the Pull variant win in
//! Fig. 4's discussion. A partial grid reproduces all of those properties:
//! a serpentine backbone guarantees connectivity and the huge diameter,
//! while a thinned set of lattice links tunes the average degree.

use crate::nid;
use rand::Rng;

use crate::{EdgeList, Graph};

/// Generates a `width x height` partial-lattice road network. `keep_prob` is
/// the probability of retaining each non-backbone lattice edge; the paper's
/// road degree (≈2.4 directed edges per node) corresponds to
/// `keep_prob ≈ 0.15`.
pub fn road(width: usize, height: usize, keep_prob: f64, seed: u64) -> Graph {
    assert!(width >= 2 && height >= 1, "lattice too small");
    let n = width * height;
    let id = |x: usize, y: usize| nid(y * width + x);
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    // Serpentine backbone: row-major snake visiting every node once.
    for y in 0..height {
        for x in 0..width - 1 {
            el.push(id(x, y), id(x + 1, y));
        }
        if y + 1 < height {
            let x = if y % 2 == 0 { width - 1 } else { 0 };
            el.push(id(x, y), id(x, y + 1));
        }
    }
    // Thinned lattice links add local shortcuts (intersections).
    for y in 0..height {
        for x in 0..width {
            if y + 1 < height && rng.gen::<f64>() < keep_prob {
                el.push(id(x, y), id(x, y + 1));
            }
            if x + 1 < width && y % 2 == 1 && rng.gen::<f64>() < keep_prob {
                el.push(id(x, y), id(x + 1, y));
            }
        }
    }
    el.symmetrize();
    Graph::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Classification, NodeClass, StructuralStats};

    #[test]
    fn all_regular_symmetric() {
        let g = road(40, 40, 0.15, 21);
        assert!(g.is_symmetric());
        let c = Classification::of(&g);
        assert_eq!(c.count(NodeClass::Regular), g.n());
    }

    #[test]
    fn low_even_degree() {
        let g = road(64, 64, 0.15, 22);
        let s = StructuralStats::of(&g);
        assert!(!s.is_skewed());
        let max_deg = (0..g.n() as u32).map(|u| g.out_degree(u)).max().unwrap();
        assert!(max_deg <= 6, "max degree {max_deg}");
        assert!(g.avg_degree() > 2.0 && g.avg_degree() < 3.5);
    }

    #[test]
    fn backbone_connects_everything() {
        // BFS from node 0 must reach all nodes.
        let g = road(16, 16, 0.0, 23);
        let mut seen = vec![false; g.n()];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(count, g.n());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            road(20, 20, 0.2, 9).out_csr(),
            road(20, 20, 0.2, 9).out_csr()
        );
    }

    #[test]
    fn single_row_lattice() {
        let g = road(10, 1, 0.5, 1);
        assert_eq!(g.n(), 10);
        assert!(g.m() >= 18); // path both directions
    }
}
