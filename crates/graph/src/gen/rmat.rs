//! R-MAT and Kronecker generators (Chakrabarti et al., and the GAP benchmark
//! suite's `kron`), parameterized exactly as the paper's synthetic datasets.

use rand::Rng;
use rayon::prelude::*;

use crate::{EdgeList, Graph, NodeId};

/// R-MAT quadrant probabilities. The defaults are the GAP/Graph500 values the
/// paper's *rmat* and *kron* graphs use: `a=0.57, b=0.19, c=0.19, d=0.05`.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

impl RmatParams {
    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a directed R-MAT graph with `2^scale` nodes and
/// `edge_factor * 2^scale` edges (before deduplication). Isolated nodes
/// arise naturally from the skewed quadrant recursion, exactly as in the
/// paper's *rmat* dataset (59 % isolated at their scale).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Graph {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let pairs = rmat_pairs(scale, m, params, seed);
    let mut el = EdgeList::from_pairs(n, pairs);
    el.dedup();
    Graph::from_edge_list(&el)
}

/// Generates the GAP-style Kronecker graph: R-MAT pairs, self-loops removed,
/// symmetrized (the paper's *kron* is undirected).
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let pairs = rmat_pairs(scale, m, RmatParams::default(), seed);
    let mut el = EdgeList::from_pairs(n, pairs);
    el.drop_self_loops();
    el.symmetrize();
    Graph::from_edge_list(&el)
}

/// Raw R-MAT pair generation, parallel over edge chunks with per-chunk
/// deterministic RNG streams.
fn rmat_pairs(scale: u32, m: usize, params: RmatParams, seed: u64) -> Vec<(NodeId, NodeId)> {
    const CHUNK: usize = 1 << 16;
    let chunks = m.div_ceil(CHUNK);
    (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let lo = chunk * CHUNK;
            let hi = (lo + CHUNK).min(m);
            let mut rng = super::rng(seed.wrapping_add(0x51_7c_c1 * chunk as u64 + 1));
            (lo..hi)
                .map(move |_| sample_edge(scale, params, &mut rng))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[inline]
fn sample_edge<R: Rng>(scale: u32, p: RmatParams, rng: &mut R) -> (NodeId, NodeId) {
    let (mut src, mut dst) = (0u32, 0u32);
    let ab = p.a + p.b;
    let abc = ab + p.c;
    debug_assert!(p.d() >= 0.0);
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: neither bit set
        } else if r < ab {
            dst |= 1;
        } else if r < abc {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StructuralStats;

    #[test]
    fn rmat_has_expected_size() {
        let g = rmat(10, 8, RmatParams::default(), 42);
        assert_eq!(g.n(), 1024);
        // Dedup removes some edges but most survive at this density.
        assert!(g.m() > 4000 && g.m() <= 8192, "m = {}", g.m());
    }

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 8, RmatParams::default(), 1);
        let b = rmat(8, 8, RmatParams::default(), 1);
        assert_eq!(a.out_csr(), b.out_csr());
        let c = rmat(8, 8, RmatParams::default(), 2);
        assert_ne!(a.out_csr(), c.out_csr());
    }

    #[test]
    fn rmat_is_skewed_with_isolated_nodes() {
        let g = rmat(12, 16, RmatParams::default(), 7);
        let s = StructuralStats::of(&g);
        assert!(s.is_skewed(), "v_hub={} e_hub={}", s.v_hub, s.e_hub);
        assert!(s.frac_isolated > 0.1, "iso = {}", s.frac_isolated);
    }

    #[test]
    fn kron_is_symmetric_without_self_loops() {
        let g = kronecker(10, 8, 3);
        assert!(g.is_symmetric());
        for u in 0..g.n() as u32 {
            assert!(!g.out_neighbors(u).contains(&u), "self loop at {u}");
        }
    }

    #[test]
    fn kron_nodes_regular_or_isolated_only() {
        use crate::{Classification, NodeClass};
        let g = kronecker(9, 8, 5);
        let c = Classification::of(&g);
        assert_eq!(c.count(NodeClass::Seed), 0);
        assert_eq!(c.count(NodeClass::Sink), 0);
        assert!(c.count(NodeClass::Isolated) > 0);
    }

    #[test]
    fn uniform_quadrants_give_near_uniform_degrees() {
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(10, 16, p, 9);
        let s = StructuralStats::of(&g);
        assert!(!s.is_skewed());
    }
}
