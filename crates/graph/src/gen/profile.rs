//! Structure-targeting generator for the paper's crawled datasets.
//!
//! weibo/track/wiki/pld are multi-hundred-megabyte crawls that are not
//! bundled here; what Mixen's behaviour depends on is their *structure*:
//! the regular/seed/sink/isolated mix (Table 1), the fraction `β` of edges
//! inside the regular subgraph (Table 2) and the skew of the in-degree
//! distribution (hub concentration). This generator takes exactly those
//! quantities as targets:
//!
//! 1. Node IDs are split class-contiguously by the target fractions.
//! 2. Each edge draws a class — regular→regular with probability `β`, the
//!    rest split across seed→regular / regular→sink / seed→sink by class
//!    availability — then endpoints from Zipf-weighted alias tables (low
//!    indices are hubs).
//! 3. Degree constraints are repaired so each node's realized class matches
//!    its assigned class exactly.
//! 4. IDs are scrambled by a random permutation so Mixen's relabeling pass
//!    has real work to do.

use crate::nid;
use rand::Rng;
use rayon::prelude::*;

use super::sampling::{zipf_weights, AliasTable};
use crate::{EdgeList, Graph, NodeId};

/// Target structure for [`generate_profile`].
#[derive(Clone, Debug)]
pub struct ProfileSpec {
    /// Node count.
    pub n: usize,
    /// Target average directed degree `m/n`.
    pub avg_degree: f64,
    /// Target class fractions; must sum to ~1.
    pub frac_regular: f64,
    /// Seed (out-only) node fraction.
    pub frac_seed: f64,
    /// Sink (in-only) node fraction.
    pub frac_sink: f64,
    /// Isolated node fraction.
    pub frac_isolated: f64,
    /// Target fraction of edges with both endpoints regular (Table 2 `β`).
    pub beta: f64,
    /// Zipf exponent of the in-degree distribution (hub concentration).
    pub in_skew: f64,
    /// Zipf exponent of the out-degree distribution.
    pub out_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ProfileSpec {
    fn validate(&self) {
        let sum = self.frac_regular + self.frac_seed + self.frac_sink + self.frac_isolated;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "class fractions must sum to 1, got {sum}"
        );
        assert!((0.0..=1.0).contains(&self.beta));
        assert!(self.n > 0 && self.avg_degree >= 0.0);
    }
}

/// Edge classes in the directed class graph.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EdgeClass {
    RegToReg,
    SeedToReg,
    RegToSink,
    SeedToSink,
}

/// Generates a graph matching `spec`. See the module docs for the algorithm.
pub fn generate_profile(spec: &ProfileSpec) -> Graph {
    spec.validate();
    let n = spec.n;
    // Class counts: round, give the remainder to the largest class, and make
    // sure any class with positive fraction gets at least one node.
    let mut counts = [
        (spec.frac_regular * n as f64).round() as usize,
        (spec.frac_seed * n as f64).round() as usize,
        (spec.frac_sink * n as f64).round() as usize,
        (spec.frac_isolated * n as f64).round() as usize,
    ];
    let fracs = [
        spec.frac_regular,
        spec.frac_seed,
        spec.frac_sink,
        spec.frac_isolated,
    ];
    for i in 0..4 {
        if fracs[i] > 0.0 && counts[i] == 0 {
            counts[i] = 1;
        }
        if fracs[i] == 0.0 {
            counts[i] = 0;
        }
    }
    // Rebalance to sum exactly n, adjusting the largest class (ties pick the
    // last index, matching `max_by_key` semantics).
    let mut largest = 0;
    for i in 1..4 {
        if counts[i] >= counts[largest] {
            largest = i;
        }
    }
    let others: usize = (0..4).filter(|&i| i != largest).map(|i| counts[i]).sum();
    assert!(others <= n, "class fractions infeasible for n = {n}");
    counts[largest] = n - others;
    let [n_reg, n_seed, n_sink, _n_iso] = counts;
    let reg_base = 0u32;
    let seed_base = nid(n_reg);
    let sink_base = nid(n_reg + n_seed);

    let m = (spec.avg_degree * n as f64).round() as usize;

    // Edge-class distribution: β to reg→reg, remainder split by receiver /
    // sender availability. Infeasible classes get zero probability.
    let mut probs = [0.0f64; 4];
    probs[EdgeClass::RegToReg as usize] = if n_reg > 0 { spec.beta } else { 0.0 };
    let rest = 1.0 - probs[EdgeClass::RegToReg as usize];
    let w_sr = if n_seed > 0 && n_reg > 0 {
        n_seed as f64
    } else {
        0.0
    };
    let w_rs = if n_sink > 0 && n_reg > 0 {
        n_sink as f64
    } else {
        0.0
    };
    let w_ss = if n_seed > 0 && n_sink > 0 {
        (n_seed as f64 * n_sink as f64).sqrt() * 0.25
    } else {
        0.0
    };
    let w_total = w_sr + w_rs + w_ss;
    if w_total > 0.0 {
        probs[EdgeClass::SeedToReg as usize] = rest * w_sr / w_total;
        probs[EdgeClass::RegToSink as usize] = rest * w_rs / w_total;
        probs[EdgeClass::SeedToSink as usize] = rest * w_ss / w_total;
    } else {
        // Only regular receivers/senders exist: everything is reg→reg.
        probs[EdgeClass::RegToReg as usize] = if n_reg > 0 { 1.0 } else { 0.0 };
    }
    let class_table = if probs.iter().sum::<f64>() > 0.0 {
        Some(AliasTable::new(&probs))
    } else {
        None
    };

    // Endpoint samplers: Zipf within each class range, hubs at low indices.
    let reg_in = nonempty_table(n_reg, spec.in_skew);
    let reg_out = nonempty_table(n_reg, spec.out_skew);
    let seed_out = nonempty_table(n_seed, spec.out_skew);
    let sink_in = nonempty_table(n_sink, spec.in_skew);

    // Parallel edge sampling with deterministic per-chunk RNG streams.
    const CHUNK: usize = 1 << 15;
    let chunks = m.div_ceil(CHUNK);
    let pairs: Vec<(NodeId, NodeId)> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let lo = chunk * CHUNK;
            let hi = (lo + CHUNK).min(m);
            let mut rng = super::rng(spec.seed.wrapping_add(0x1357 * chunk as u64 + 11));
            let class_table = class_table.as_ref();
            let reg_in = reg_in.as_ref();
            let reg_out = reg_out.as_ref();
            let seed_out = seed_out.as_ref();
            let sink_in = sink_in.as_ref();
            (lo..hi)
                .filter_map(move |_| {
                    let class = match class_table?.sample(&mut rng) {
                        0 => EdgeClass::RegToReg,
                        1 => EdgeClass::SeedToReg,
                        2 => EdgeClass::RegToSink,
                        _ => EdgeClass::SeedToSink,
                    };
                    let src = match class {
                        EdgeClass::RegToReg | EdgeClass::RegToSink => {
                            reg_base + reg_out?.sample(&mut rng)
                        }
                        _ => seed_base + seed_out?.sample(&mut rng),
                    };
                    let dst = match class {
                        EdgeClass::RegToReg | EdgeClass::SeedToReg => {
                            reg_base + reg_in?.sample(&mut rng)
                        }
                        _ => sink_base + sink_in?.sample(&mut rng),
                    };
                    Some((src, dst))
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let mut el = EdgeList::from_pairs(n, pairs);
    el.drop_self_loops();
    el.dedup();

    // Constraint repair: realized degrees must match assigned classes.
    let pairs = repair_classes(n, n_reg, n_seed, n_sink, el.into_pairs(), spec.seed);
    let mut el = EdgeList::from_pairs(n, pairs);
    el.dedup();

    // Scramble IDs so the generated graph is not pre-sorted by class.
    el.relabel(&super::random_permutation(n, spec.seed ^ 0xDEAD_BEEF));
    Graph::from_edge_list(&el)
}

fn nonempty_table(n: usize, theta: f64) -> Option<AliasTable> {
    (n > 0).then(|| AliasTable::new(&zipf_weights(n, theta)))
}

/// Adds the minimum edges needed so that every node in the regular range has
/// in ≥ 1 and out ≥ 1, every seed has out ≥ 1 and every sink has in ≥ 1.
/// Repair edges respect class constraints (sources are regular/seed,
/// destinations regular/sink) so no node's class is broken by the repair.
fn repair_classes(
    n: usize,
    n_reg: usize,
    n_seed: usize,
    n_sink: usize,
    mut pairs: Vec<(NodeId, NodeId)>,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let mut in_deg = vec![0u32; n];
    let mut out_deg = vec![0u32; n];
    for &(s, d) in &pairs {
        out_deg[s as usize] += 1;
        in_deg[d as usize] += 1;
    }
    let mut rng = super::rng(seed ^ 0x5EED);
    let reg_range = 0..nid(n_reg);
    let seed_range = nid(n_reg)..nid(n_reg + n_seed);
    let sink_range = nid(n_reg + n_seed)..nid(n_reg + n_seed + n_sink);
    // A receiver for dangling out-edges and a sender for missing in-edges.
    // Prefer regular hubs (index 0 region) so repairs reinforce the skew.
    let pick_receiver = |rng: &mut rand::rngs::StdRng, avoid: u32| -> Option<u32> {
        if n_reg > 1 || (n_reg == 1 && avoid != 0) {
            let mut v = rng.gen_range(0..(nid(n_reg)).clamp(1, 8));
            if v == avoid {
                v = (v + 1) % nid(n_reg);
            }
            Some(v)
        } else if n_sink > 0 {
            Some(sink_range.start + rng.gen_range(0..nid(n_sink)))
        } else {
            None
        }
    };
    let pick_sender = |rng: &mut rand::rngs::StdRng, avoid: u32| -> Option<u32> {
        if n_reg > 1 || (n_reg == 1 && avoid != 0) {
            let mut v = rng.gen_range(0..(nid(n_reg)).clamp(1, 8));
            if v == avoid {
                v = (v + 1) % nid(n_reg);
            }
            Some(v)
        } else if n_seed > 0 {
            Some(seed_range.start + rng.gen_range(0..nid(n_seed)))
        } else {
            None
        }
    };
    let mut extra: Vec<(NodeId, NodeId)> = Vec::new();
    for u in reg_range.clone() {
        if out_deg[u as usize] == 0 {
            if let Some(v) = pick_receiver(&mut rng, u) {
                extra.push((u, v));
                out_deg[u as usize] += 1;
                in_deg[v as usize] += 1;
            }
        }
        if in_deg[u as usize] == 0 {
            if let Some(s) = pick_sender(&mut rng, u) {
                extra.push((s, u));
                out_deg[s as usize] += 1;
                in_deg[u as usize] += 1;
            }
        }
    }
    for u in seed_range.clone() {
        if out_deg[u as usize] == 0 {
            if let Some(v) = pick_receiver(&mut rng, u32::MAX) {
                extra.push((u, v));
                out_deg[u as usize] += 1;
                in_deg[v as usize] += 1;
            }
        }
    }
    for u in sink_range.clone() {
        if in_deg[u as usize] == 0 {
            if let Some(s) = pick_sender(&mut rng, u32::MAX) {
                extra.push((s, u));
                out_deg[s as usize] += 1;
                in_deg[u as usize] += 1;
            }
        }
    }
    // Pathological corner: a single regular node with nothing else to link
    // to keeps itself regular through a self-loop.
    if n_reg == 1 && (out_deg[0] == 0 || in_deg[0] == 0) {
        extra.push((0, 0));
    }
    pairs.extend(extra);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Classification, NodeClass, StructuralStats};

    fn wiki_like(n: usize) -> ProfileSpec {
        ProfileSpec {
            n,
            avg_degree: 9.5,
            frac_regular: 0.22,
            frac_seed: 0.33,
            frac_sink: 0.45,
            frac_isolated: 0.0,
            beta: 0.78,
            in_skew: 0.9,
            out_skew: 0.6,
            seed: 99,
        }
    }

    #[test]
    fn classes_match_targets_exactly() {
        let spec = wiki_like(4000);
        let g = generate_profile(&spec);
        let c = Classification::of(&g);
        let n = g.n() as f64;
        assert!((c.count(NodeClass::Regular) as f64 / n - 0.22).abs() < 0.02);
        assert!((c.count(NodeClass::Seed) as f64 / n - 0.33).abs() < 0.02);
        assert!((c.count(NodeClass::Sink) as f64 / n - 0.45).abs() < 0.02);
        assert_eq!(c.count(NodeClass::Isolated), 0);
    }

    #[test]
    fn beta_near_target() {
        let spec = wiki_like(8000);
        let g = generate_profile(&spec);
        let s = StructuralStats::of(&g);
        assert!((s.beta - 0.78).abs() < 0.12, "beta = {}", s.beta);
    }

    #[test]
    fn isolated_fraction_respected() {
        let spec = ProfileSpec {
            frac_regular: 0.5,
            frac_seed: 0.1,
            frac_sink: 0.2,
            frac_isolated: 0.2,
            beta: 0.8,
            ..wiki_like(3000)
        };
        let g = generate_profile(&spec);
        let c = Classification::of(&g);
        let iso = c.count(NodeClass::Isolated) as f64 / g.n() as f64;
        assert!((iso - 0.2).abs() < 0.03, "iso = {iso}");
    }

    #[test]
    fn weibo_like_extreme_seed_fraction() {
        let spec = ProfileSpec {
            n: 4000,
            avg_degree: 20.0,
            frac_regular: 0.01,
            frac_seed: 0.99,
            frac_sink: 0.0,
            frac_isolated: 0.0,
            beta: 0.06,
            in_skew: 1.2,
            out_skew: 0.8,
            seed: 7,
        };
        let g = generate_profile(&spec);
        let s = StructuralStats::of(&g);
        assert!(s.alpha < 0.03, "alpha = {}", s.alpha);
        assert!(s.e_hub > 0.8, "e_hub = {}", s.e_hub);
        assert!(s.is_skewed());
    }

    #[test]
    fn deterministic() {
        let spec = wiki_like(1000);
        let a = generate_profile(&spec);
        let b = generate_profile(&spec);
        assert_eq!(a.out_csr(), b.out_csr());
    }

    #[test]
    fn tiny_graph_with_one_regular() {
        let spec = ProfileSpec {
            n: 10,
            avg_degree: 2.0,
            frac_regular: 0.1,
            frac_seed: 0.5,
            frac_sink: 0.4,
            frac_isolated: 0.0,
            beta: 0.1,
            in_skew: 0.5,
            out_skew: 0.5,
            seed: 3,
        };
        let g = generate_profile(&spec);
        let c = Classification::of(&g);
        assert_eq!(c.count(NodeClass::Regular), 1);
    }

    #[test]
    fn no_self_loops_in_output_except_degenerate() {
        let g = generate_profile(&wiki_like(2000));
        let loops = g.edges().filter(|&(s, d)| s == d).count();
        assert_eq!(loops, 0);
    }
}
