//! End-to-end tests: a real server on an ephemeral port, driven over real
//! sockets with the load generator's HTTP helpers.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mixen_core::Json;
use mixen_graph::{Dataset, Scale};
use mixen_serve::{http_get, http_request, run_load, LoadOpts, ServeOpts, Server, ServerHandle};

fn start_server(opts: ServeOpts) -> (SocketAddr, ServerHandle) {
    let g = Arc::new(Dataset::Wiki.generate(Scale::Tiny, 42));
    let handle = Server::start(g, opts).expect("server start");
    (handle.addr(), handle)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Json) {
    let (status, body) = http_get(addr, path).expect("request");
    let json = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}\n{body}"));
    (status, json)
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: mixen\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, text) = http_request(addr, &request).expect("request");
    let json = Json::parse(&text).unwrap_or_else(|e| panic!("bad JSON from {path}: {e}\n{text}"));
    (status, json)
}

/// Polls until the resident ranking has converged, so responses from
/// successive requests come from the same (final) snapshot.
fn wait_converged(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, health) = get_json(addr, "/healthz");
        if health.get("converged") == Some(&Json::Bool(true)) {
            return;
        }
        assert!(Instant::now() < deadline, "ranking never converged");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn endpoints_answer_from_a_live_snapshot() {
    let (addr, handle) = start_server(ServeOpts::default());
    wait_converged(addr);

    let (status, health) = get_json(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
    let n = health.get("nodes").and_then(Json::as_u64).unwrap();
    assert!(n > 0);
    // Server::start waits for the first publish, so version >= 1 always.
    assert!(
        health
            .get("snapshot_version")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );

    let (status, top) = get_json(addr, "/rank/top?k=5");
    assert_eq!(status, 200);
    let Some(Json::Arr(nodes)) = top.get("nodes") else {
        panic!("missing nodes: {top:?}");
    };
    assert_eq!(nodes.len(), 5);
    // Descending, finite scores.
    let scores: Vec<f64> = nodes
        .iter()
        .map(|e| e.get("score").and_then(Json::as_f64).unwrap())
        .collect();
    for pair in scores.windows(2) {
        assert!(pair[0] >= pair[1], "not descending: {scores:?}");
    }
    assert!(scores.iter().all(|s| s.is_finite()));

    let first = nodes[0].get("node").and_then(Json::as_u64).unwrap();
    let (status, one) = get_json(addr, &format!("/score?node={first}"));
    assert_eq!(status, 200);
    assert_eq!(
        one.get("score").and_then(Json::as_f64).unwrap(),
        scores[0],
        "single lookup disagrees with top-k"
    );

    let (status, nbrs) = get_json(addr, &format!("/neighbors?node={first}&limit=3"));
    assert_eq!(status, 200);
    let Some(Json::Arr(out)) = nbrs.get("out") else {
        panic!("missing out: {nbrs:?}");
    };
    let out_degree = nbrs.get("out_degree").and_then(Json::as_u64).unwrap();
    assert_eq!(out.len() as u64, out_degree.min(3));

    let (status, scored) = post_json(addr, "/scores", &format!("{{\"nodes\": [0, 1, {first}]}}"));
    assert_eq!(status, 200);
    let Some(Json::Arr(entries)) = scored.get("scores") else {
        panic!("missing scores: {scored:?}");
    };
    assert_eq!(entries.len(), 3);

    let (status, metrics) = get_json(addr, "/metrics");
    assert_eq!(status, 200);
    let counters = metrics.get("counters").expect("counters");
    assert!(
        counters
            .get("requests_served")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    assert!(
        counters
            .get("snapshot_swaps")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    // Engine counters merged in by name from the snapshot.
    assert!(
        counters
            .get("edges_scattered")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1,
        "{counters:?}"
    );

    handle.shutdown_and_join();
}

#[test]
fn error_paths_are_typed_statuses() {
    let (addr, handle) = start_server(ServeOpts::default());

    assert_eq!(get_json(addr, "/nope").0, 404);
    assert_eq!(get_json(addr, "/score").0, 400); // node required
    assert_eq!(get_json(addr, "/score?node=abc").0, 400);
    assert_eq!(get_json(addr, "/score?node=99999999").0, 404);
    assert_eq!(get_json(addr, "/rank/top?k=abc").0, 400);
    // GET on a POST-only route.
    assert_eq!(get_json(addr, "/scores").0, 405);
    // Hostile body: nesting far past MAX_JSON_DEPTH must be a clean 400
    // (the depth cap), not a stack overflow.
    // 40 KB: under MAX_BODY_BYTES, so it reaches the parser — whose depth
    // cap must stop it.
    let hostile = format!("{}{}", "[".repeat(20_000), "]".repeat(20_000));
    let (status, err) = post_json(addr, "/scores", &hostile);
    assert_eq!(status, 400);
    assert!(
        err.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("json nesting depth"),
        "{err:?}"
    );
    // Body over the byte limit is refused before parsing.
    let huge = "x".repeat(mixen_serve::http::MAX_BODY_BYTES + 1);
    assert_eq!(post_json(addr, "/scores", &huge).0, 413);

    // An already-expired deadline answers 504 with the typed rendering.
    let (status, err) = get_json(addr, "/rank/top?k=3&deadline_ms=0");
    assert_eq!(status, 504);
    assert!(
        err.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("deadline exceeded"),
        "{err:?}"
    );

    handle.shutdown_and_join();
}

#[test]
fn concurrent_load_is_served_consistently() {
    let (addr, handle) = start_server(ServeOpts::default());
    let report = run_load(
        addr,
        &LoadOpts {
            concurrency: 8,
            requests_per_client: 50,
            top_k: 10,
        },
    );
    assert_eq!(report.requests, 400);
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.ok + report.rejected, report.requests);
    assert!(report.ok > 0);
    assert!(report.p99_ms >= report.p50_ms);
    assert!(handle.requests_served() >= report.ok);
    handle.shutdown_and_join();
}

#[test]
fn admission_control_rejects_overflow_with_429() {
    // One worker, tiny queue: park the worker on a slow request by holding
    // a connection open (the worker blocks reading it), then flood.
    let (addr, handle) = start_server(ServeOpts {
        workers: 1,
        queue_cap: 1,
        batch_cap: 1,
        default_deadline_ms: 0,
        ..ServeOpts::default()
    });
    // Open a connection but send nothing: the worker sits in the read until
    // its socket timeout, pinning the queue.
    let blocker = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // Flood in parallel: with the worker pinned and one queue slot, most of
    // these must be shed at the door.
    let statuses: Vec<u16> = (0..8)
        .map(|_| std::thread::spawn(move || http_get(addr, "/healthz").map(|(s, _)| s)))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap().unwrap_or(0))
        .collect();
    assert!(
        statuses.contains(&429),
        "flood never hit admission control: {statuses:?}"
    );
    assert!(handle.requests_rejected() >= 1);
    drop(blocker);
    handle.shutdown_and_join();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (addr, handle) = start_server(ServeOpts::default());
    // Request the drain over the wire...
    let (status, body) = post_json(addr, "/admin/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("draining"), Some(&Json::Bool(true)));
    // ...and the server must come down on its own (no handle.shutdown()).
    let deadline = Instant::now() + Duration::from_secs(30);
    handle.join();
    assert!(Instant::now() < deadline, "drain took too long");
    // The port is released: a fresh connect must fail or be refused.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err(),
        "listener still accepting after drain"
    );
}

#[test]
fn snapshot_versions_do_not_regress_under_refresh() {
    // Slow refresh so versions keep advancing while we read.
    let (addr, handle) = start_server(ServeOpts {
        refresh_iters: 1,
        max_iters: 400,
        tol: 0.0, // never converges: keeps publishing until max_iters
        ..ServeOpts::default()
    });
    let mut last = 0u64;
    for _ in 0..40 {
        let (status, j) = get_json(addr, "/rank/top?k=3");
        assert_eq!(status, 200);
        let v = j.get("snapshot_version").and_then(Json::as_u64).unwrap();
        assert!(v >= last, "snapshot version regressed {last} -> {v}");
        last = v;
    }
    assert!(last >= 1);
    handle.shutdown_and_join();
}
