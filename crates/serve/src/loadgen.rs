//! Closed-loop load generator for the serve bench and the CI smoke job.
//!
//! Each client thread issues requests back-to-back (a closed loop: the next
//! request starts when the previous response lands), mixing top-k and
//! single-score lookups. Latency is measured connect-to-last-byte, i.e. the
//! full cost a caller pays, queueing and admission included; 429s are
//! counted separately so overload shows up as shed load, not as latency.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use mixen_core::Json;

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadOpts {
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Requests per client thread.
    pub requests_per_client: usize,
    /// `k` for the top-k requests in the mix.
    pub top_k: usize,
}

impl Default for LoadOpts {
    fn default() -> Self {
        Self {
            concurrency: 4,
            requests_per_client: 200,
            top_k: 10,
        }
    }
}

/// One load run's outcome.
#[derive(Clone, Debug)]
pub struct LoadReport {
    pub concurrency: usize,
    pub requests: u64,
    pub ok: u64,
    pub rejected: u64,
    pub errors: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub qps: f64,
    pub elapsed_s: f64,
}

impl LoadReport {
    /// The sidecar/bench JSON shape (see EXPERIMENTS.md).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "concurrency".into(),
                Json::from_u64(self.concurrency as u64),
            ),
            ("requests".into(), Json::from_u64(self.requests)),
            ("ok".into(), Json::from_u64(self.ok)),
            ("rejected".into(), Json::from_u64(self.rejected)),
            ("errors".into(), Json::from_u64(self.errors)),
            ("p50_ms".into(), Json::from_f64(self.p50_ms)),
            ("p99_ms".into(), Json::from_f64(self.p99_ms)),
            ("qps".into(), Json::from_f64(self.qps)),
            ("elapsed_s".into(), Json::from_f64(self.elapsed_s)),
        ])
    }
}

/// Issues one HTTP request on a fresh connection; returns the status code
/// and body.
pub fn http_request(addr: SocketAddr, request: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    // A server shedding load may respond and close before the request is
    // fully written; treat a write failure as "stop sending" and still try
    // to read whatever response landed.
    let write_result = stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.flush());
    let mut raw = String::new();
    if stream.read_to_string(&mut raw).is_err() && raw.is_empty() {
        write_result?;
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "no response",
        ));
    }
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Convenience: `GET` the path and return `(status, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    http_request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: mixen\r\nConnection: close\r\n\r\n"),
    )
}

/// Runs the closed-loop sweep at one concurrency level.
pub fn run_load(addr: SocketAddr, opts: &LoadOpts) -> LoadReport {
    // Discover the node-ID space once so the score lookups spread over it.
    let n = http_get(addr, "/healthz")
        .ok()
        .and_then(|(_, body)| Json::parse(&body).ok())
        .and_then(|j| j.get("nodes").and_then(Json::as_u64))
        .unwrap_or(1)
        .max(1);

    let started = Instant::now();
    let handles: Vec<_> = (0..opts.concurrency.max(1))
        .map(|client| {
            let opts = opts.clone();
            std::thread::spawn(move || {
                let mut lat_us: Vec<u64> = Vec::with_capacity(opts.requests_per_client);
                let (mut ok, mut rejected, mut errors) = (0u64, 0u64, 0u64);
                for i in 0..opts.requests_per_client {
                    let path = if i % 3 == 0 {
                        format!("/rank/top?k={}", opts.top_k)
                    } else {
                        let node = (client * 7_919 + i * 104_729) as u64 % n;
                        format!("/score?node={node}")
                    };
                    let t0 = Instant::now();
                    match http_get(addr, &path) {
                        Ok((200, _)) => {
                            ok += 1;
                            lat_us
                                .push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                        }
                        Ok((429, _)) => rejected += 1,
                        Ok(_) | Err(_) => errors += 1,
                    }
                }
                (lat_us, ok, rejected, errors)
            })
        })
        .collect();

    let mut lat_us: Vec<u64> = Vec::new();
    let (mut ok, mut rejected, mut errors) = (0u64, 0u64, 0u64);
    for h in handles {
        let (l, o, r, e) = h.join().unwrap_or_default();
        lat_us.extend(l);
        ok += o;
        rejected += r;
        errors += e;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    LoadReport {
        concurrency: opts.concurrency,
        requests: (opts.concurrency.max(1) * opts.requests_per_client) as u64,
        ok,
        rejected,
        errors,
        p50_ms: percentile_ms(&lat_us, 50.0),
        p99_ms: percentile_ms(&lat_us, 99.0),
        qps: if elapsed_s > 0.0 {
            ok as f64 / elapsed_s
        } else {
            0.0
        },
        elapsed_s,
    }
}

/// Nearest-rank percentile over sorted microsecond samples, in ms.
fn percentile_ms(sorted_us: &[u64], pct: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * (sorted_us.len() - 1) as f64).round();
    // lint: allow(truncation) reason=rank is a rounded in-range index
    let idx = (rank as usize).min(sorted_us.len() - 1);
    sorted_us[idx] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_sorted_samples() {
        let us: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile_ms(&us, 50.0), 51.0);
        assert_eq!(percentile_ms(&us, 99.0), 99.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        assert_eq!(percentile_ms(&[2_500], 99.0), 2.5);
    }

    #[test]
    fn report_json_has_the_schema_fields() {
        let report = LoadReport {
            concurrency: 2,
            requests: 10,
            ok: 9,
            rejected: 1,
            errors: 0,
            p50_ms: 1.5,
            p99_ms: 4.0,
            qps: 123.0,
            elapsed_s: 0.1,
        };
        let j = report.to_json();
        for key in [
            "concurrency",
            "requests",
            "ok",
            "rejected",
            "errors",
            "p50_ms",
            "p99_ms",
            "qps",
            "elapsed_s",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}
