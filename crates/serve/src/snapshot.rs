//! Rank snapshots and the resident ranking loop.
//!
//! The ranking thread owns a [`MixenEngine`] and a
//! [`mixen_algos::PageRankStream`], advances a few iterations at a time,
//! and publishes the scores through [`SnapCell`] — the atomic swap point
//! request workers read from. Readers therefore never block on ranking and
//! ranking never blocks on readers; the snapshot a worker holds stays
//! immutable for as long as it keeps the `Arc`.

use std::sync::Arc;
use std::time::Duration;

use mixen_algos::{PageRankOpts, PageRankStream};
use mixen_core::{Json, MetricsSnapshot, MixenEngine, SnapCell};
use mixen_graph::Graph;

use crate::server::Shared;

/// One immutable published state of the ranking computation.
#[derive(Debug)]
pub struct RankSnapshot {
    /// Per-node scores, indexed by original node ID.
    pub scores: Vec<f32>,
    /// Total PageRank iterations folded into these scores.
    pub iterations: usize,
    /// Max-norm score change of the last refresh batch.
    pub residual: f64,
    /// Whether the residual fell to the configured tolerance.
    pub converged: bool,
    /// Engine counters at publish time, merged into `/metrics`.
    pub engine_counters: MetricsSnapshot,
}

impl RankSnapshot {
    /// The pre-first-publish placeholder. [`crate::Server::start`] blocks
    /// until the ranking loop replaces it, so requests never observe it.
    pub(crate) fn empty(n: usize) -> Self {
        Self {
            scores: vec![0.0; n],
            iterations: 0,
            residual: f64::INFINITY,
            converged: false,
            engine_counters: MetricsSnapshot::default(),
        }
    }

    /// The snapshot header every scoring endpoint embeds in its response.
    pub fn meta_json(&self, version: u64) -> Vec<(String, Json)> {
        vec![
            ("snapshot_version".into(), Json::from_u64(version)),
            ("iterations".into(), Json::from_u64(self.iterations as u64)),
            ("residual".into(), Json::from_f64(self.residual)),
            ("converged".into(), Json::Bool(self.converged)),
        ]
    }
}

/// The resident ranking loop: advance → publish → repeat, until converged
/// or at the iteration cap, then idle; exits when shutdown is requested.
pub(crate) fn ranking_loop(shared: &Shared, graph: &Arc<Graph>, cell: &SnapCell<RankSnapshot>) {
    let opts = &shared.opts;
    let engine = MixenEngine::new(graph, opts.mixen);
    let pr_opts = PageRankOpts {
        damping: opts.damping,
        redistribute: false,
    };
    let mut stream = PageRankStream::new(graph, &engine, pr_opts);
    let refresh = opts.refresh_iters.max(1);
    let max_iters = opts.max_iters.max(refresh);
    let mut converged = false;
    loop {
        if shared.shutdown_requested() {
            return;
        }
        if converged || stream.iterations() >= max_iters {
            // Steady state: nothing to compute, keep the snapshot live and
            // watch for shutdown.
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        let batch = refresh.min(max_iters - stream.iterations());
        let residual = stream.advance(batch);
        converged = residual <= opts.tol;
        cell.publish(Arc::new(RankSnapshot {
            scores: stream.scores(),
            iterations: stream.iterations(),
            residual,
            converged,
            engine_counters: engine.metrics().snapshot(),
        }));
        shared.metrics.snapshot_swaps.inc();
    }
}
