//! Hand-rolled HTTP/1.1 plumbing — request parsing and response writing
//! over a plain [`TcpStream`].
//!
//! Deliberately tiny: one request per connection (`Connection: close`),
//! `GET`/`POST` only, no chunked transfer, no percent-decoding (every query
//! value the service accepts is numeric). The parser is the part of the
//! server that touches untrusted bytes, so every input is bounded: request
//! head at [`MAX_HEAD_BYTES`], body at [`MAX_BODY_BYTES`], and JSON bodies
//! inherit `mixen_core::obs::MAX_JSON_DEPTH` downstream.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use mixen_core::Json;

/// Upper bound on the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body (`Content-Length` beyond this is a 413).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A failed request read, tagged with how the server should answer.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request — answer 400.
    Bad(String),
    /// Request exceeds a size bound — answer 413.
    TooLarge(String),
    /// Socket failure mid-request — nothing to answer, drop the connection.
    Io(std::io::Error),
}

/// A parsed request: method, path, query parameters, and body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    query: Vec<(String, String)>,
    pub body: String,
}

impl Request {
    /// Reads and parses one request from the stream, enforcing the size
    /// bounds. The caller is expected to have armed read timeouts so a
    /// stalled client cannot pin a worker.
    pub fn read_from(stream: &mut TcpStream) -> Result<Request, HttpError> {
        let mut reader = BufReader::new(stream);
        let request_line = read_head_line(&mut reader, 0)?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::Bad("empty request line".into()))?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::Bad("request line missing target".into()))?
            .to_string();
        let version = parts.next().unwrap_or("HTTP/1.0");
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Bad(format!("unsupported version '{version}'")));
        }

        let mut head_bytes = request_line.len();
        let mut content_length = 0usize;
        loop {
            let line = read_head_line(&mut reader, head_bytes)?;
            head_bytes += line.len() + 2;
            if line.is_empty() {
                break;
            }
            if let Some((key, value)) = line.split_once(':') {
                if key.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        HttpError::Bad(format!("invalid Content-Length '{}'", value.trim()))
                    })?;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            // Consume the declared body (bounded) before answering: closing
            // with unread data in the receive buffer would RST the
            // connection and discard the 413 response on the way out.
            let drain = content_length.min(4 * 1024 * 1024) as u64;
            let _ = std::io::copy(&mut reader.by_ref().take(drain), &mut std::io::sink());
            return Err(HttpError::TooLarge(format!(
                "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )));
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
        let body = String::from_utf8(body)
            .map_err(|_| HttpError::Bad("body is not valid UTF-8".into()))?;

        let (path, qs) = target.split_once('?').unwrap_or((target.as_str(), ""));
        let query = qs
            .split('&')
            .filter(|pair| !pair.is_empty())
            .map(|pair| {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                (k.to_string(), v.to_string())
            })
            .collect();
        Ok(Request {
            method,
            path: path.to_string(),
            query,
            body,
        })
    }

    /// The raw value of a query parameter.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A typed query parameter; a present-but-unparsable value is an error
    /// message suitable for a 400 body.
    pub fn query_parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.query(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("query parameter '{key}' has invalid value '{v}'")),
        }
    }
}

/// Reads one CRLF- (or LF-) terminated header line, bounded so a hostile
/// peer cannot grow the head without limit.
fn read_head_line(
    reader: &mut BufReader<&mut TcpStream>,
    already: usize,
) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    let budget = MAX_HEAD_BYTES.saturating_sub(already) + 2;
    let mut limited = reader.take(budget as u64);
    let n = limited.read_until(b'\n', &mut buf).map_err(HttpError::Io)?;
    if n == 0 {
        return Err(HttpError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-request",
        )));
    }
    if !buf.ends_with(b"\n") {
        return Err(HttpError::TooLarge(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    while buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::Bad("header line is not valid UTF-8".into()))
}

/// The reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response and flushes. One response per
/// connection: `Connection: close` is always sent.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    let text = body.render();
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
        reason(status),
        text.len(),
    )?;
    stream.flush()
}

/// The uniform error body: `{"status": N, "error": "..."}`.
pub fn error_json(status: u16, message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("status".into(), Json::from_u64(u64::from(status))),
        ("error".into(), Json::Str(message.into())),
    ])
}
