//! Admission control: a bounded pending-request queue.
//!
//! The accept loop pushes, the request workers pop in batches. Pushing
//! against a full (or closed) queue fails *immediately* — the accept loop
//! answers 429 rather than letting latency grow without bound — which is
//! the whole point: under overload the server sheds load at the door
//! instead of queueing until every client times out.
//!
//! Batch pops are what turns concurrent requests into shared work: one
//! snapshot load (and one set of metrics updates) serves the whole batch.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// A bounded multi-producer multi-consumer queue with batch pops.
pub struct Admission<T> {
    cap: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Admission<T> {
    /// A queue admitting at most `cap` pending items (min 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits `item`, returning the queue depth after the push; gives the
    /// item back when the queue is full or closed (the caller owns the
    /// rejection response).
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut st = self.lock();
        if st.closed || st.queue.len() >= self.cap {
            return Err(item);
        }
        st.queue.push_back(item);
        let depth = st.queue.len();
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until at least one item is available, then drains up to `max`
    /// items. Returns an empty batch only when the queue is closed *and*
    /// fully drained — the worker's signal to exit.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut st = self.lock();
        loop {
            if !st.queue.is_empty() {
                let n = st.queue.len().min(max.max(1));
                return st.queue.drain(..n).collect();
            }
            if st.closed {
                return Vec::new();
            }
            st = self
                .ready
                .wait(st)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, and workers exit once the
    /// backlog is drained (items already admitted are still served — this
    /// is the graceful-drain half of shutdown).
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether [`Admission::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// True when no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A worker that panicked while holding the lock leaves consistent
        // state (queue mutations are single push/drain calls).
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_rejects_overflow() {
        let q = Admission::new(2);
        assert_eq!(q.try_push(1u32), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_caps_and_preserves_order() {
        let q = Admission::new(8);
        for i in 0..5u32 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(3), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(16), vec![3, 4]);
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = Arc::new(Admission::new(8));
        q.try_push(7u32).unwrap();
        q.close();
        assert!(q.try_push(8).is_err());
        // Admitted work is still served after close...
        assert_eq!(q.pop_batch(4), vec![7]);
        // ...and only then do poppers get the exit signal.
        assert_eq!(q.pop_batch(4), Vec::<u32>::new());
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_on_close() {
        let q = Arc::new(Admission::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let batch = q.pop_batch(2);
                    if batch.is_empty() {
                        return seen;
                    }
                    seen.extend(batch);
                }
            })
        };
        for i in 0..6u32 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut seen = popper.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }
}
