//! **mixen-serve** — the online ranking service over resident Mixen
//! engines.
//!
//! Everything in the rest of the workspace is batch: load → rank → exit.
//! This crate turns the same machinery into a long-lived server answering
//! concurrent queries:
//!
//! * **Resident ranking** — one thread owns a prepared
//!   [`mixen_core::MixenEngine`] and advances PageRank a few iterations at
//!   a time ([`mixen_algos::PageRankStream`]), following exactly the
//!   trajectory of a batch run.
//! * **Atomic snapshots** — each refresh publishes an immutable
//!   [`RankSnapshot`] through [`mixen_core::SnapCell`]; reads never block
//!   ranking, ranking never blocks reads, and the swap protocol is
//!   model-checked (`crates/check/tests/snap_model.rs`).
//! * **Admission control** — a bounded pending queue ([`Admission`]); over
//!   capacity the accept loop answers 429 instead of queueing unboundedly.
//! * **Request batching** — workers drain the queue in batches and serve
//!   each batch from a single snapshot load.
//! * **Per-request deadlines** — `?deadline_ms=` (or the configured
//!   default) counts queueing time against the budget and answers 504 with
//!   the same typed rendering as the batch runner's
//!   [`mixen_graph::GraphError::Deadline`].
//! * **Graceful drain** — SIGINT/SIGTERM (CLI), `POST /admin/shutdown`, or
//!   [`ServerHandle::shutdown`] stop admission, serve the admitted
//!   backlog, and join every thread before exit.
//!
//! The HTTP layer is hand-rolled over `std::net` (the build environment is
//! offline; no hyper, no tokio): HTTP/1.1, one request per connection,
//! bounded head/body sizes. See DESIGN.md §9 for the full protocol and
//! README for the endpoint table.

pub mod admission;
pub mod http;
pub mod loadgen;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use admission::Admission;
pub use loadgen::{http_get, http_request, run_load, LoadOpts, LoadReport};
pub use server::{ServeOpts, Server, ServerHandle};
pub use snapshot::RankSnapshot;
