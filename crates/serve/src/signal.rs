//! Process-signal plumbing for graceful drain, without a libc crate.
//!
//! `SIGINT`/`SIGTERM` flip one process-wide atomic; the accept loop polls
//! it and starts the drain (stop accepting → serve the admitted backlog →
//! publish nothing further → join). The handler body is a single atomic
//! store, which is async-signal-safe; everything else happens on normal
//! threads.
//!
//! On non-Unix targets installation is a no-op and shutdown comes only
//! from `/admin/shutdown` or [`crate::ServerHandle::shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; read by every server's accept loop.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// True once `SIGINT` or `SIGTERM` was delivered (after
/// [`install_handlers`]).
pub fn requested() -> bool {
    SIGNALED.load(Ordering::Acquire)
}

/// Test/CLI hook: simulate signal delivery in-process.
pub fn raise() {
    SIGNALED.store(true, Ordering::Release);
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Single atomic store: async-signal-safe (no locks, no allocation).
    SIGNALED.store(true, Ordering::Release);
}

/// Routes `SIGINT` and `SIGTERM` to the drain flag. Idempotent.
#[cfg(unix)]
pub fn install_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        // POSIX `signal(2)`; `sighandler_t` is a function pointer, passed
        // here as `usize` to avoid declaring the alias.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    // SAFETY: `signal` is the libc symbol every Linux process links; the
    // installed handler only performs an atomic store (async-signal-safe
    // per POSIX) and stays valid for the process lifetime (a static fn).
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// No-op off Unix: there is no portable handler to install.
#[cfg(not(unix))]
pub fn install_handlers() {}
