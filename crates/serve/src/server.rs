//! The server proper: accept loop, admission, batched request workers, and
//! graceful drain.
//!
//! Thread layout (for `workers = W`):
//!
//! * **1 ranking thread** — owns the resident engine, publishes
//!   [`RankSnapshot`]s through the [`SnapCell`] (see [`crate::snapshot`]).
//! * **1 accept thread** — non-blocking accept; admits connections into the
//!   bounded queue or answers 429 on the spot.
//! * **1 supervisor thread** hosting a dedicated `mixen_pool::ThreadPool`
//!   of W request workers. Each worker drains *batches* from the admission
//!   queue and serves a whole batch against a single snapshot load.
//!
//! Shutdown (signal, `/admin/shutdown`, or [`ServerHandle::shutdown`]):
//! the accept loop stops admitting and closes the queue; workers serve the
//! already-admitted backlog and exit; the ranking thread exits at its next
//! batch boundary; [`ServerHandle::join`] then returns. In-flight requests
//! are always answered.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mixen_algos::top_k;
use mixen_core::{Json, Metrics, SnapCell};
use mixen_graph::{Graph, GraphError};

use crate::admission::Admission;
use crate::http::{error_json, respond_json, HttpError, Request};
use crate::signal;
use crate::snapshot::{ranking_loop, RankSnapshot};

/// Server configuration. `Default` is sized for functional tests and small
/// graphs; the CLI maps its flags onto these fields.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Request worker count (≥ 1).
    pub workers: usize,
    /// Admission bound: pending requests beyond this are answered 429.
    pub queue_cap: usize,
    /// Max requests a worker serves per snapshot load.
    pub batch_cap: usize,
    /// Default per-request deadline in ms (0 = none); `?deadline_ms=` on a
    /// request overrides it.
    pub default_deadline_ms: u64,
    /// Engine iterations folded into each published snapshot.
    pub refresh_iters: usize,
    /// Total iteration cap for the resident ranking.
    pub max_iters: usize,
    /// Convergence tolerance on the per-batch max-norm residual.
    pub tol: f64,
    /// PageRank damping factor.
    pub damping: f32,
    /// Whether SIGINT/SIGTERM (via [`crate::signal`]) trigger the drain.
    /// Off by default so in-process tests are isolated; the CLI turns it
    /// on.
    pub honor_signals: bool,
    /// Options for the resident [`mixen_core::MixenEngine`] — the CLI's
    /// `--reorder` flag lands here (as a resolved `ordering`), so the
    /// serving engine preprocesses with the requested relabel policy.
    pub mixen: mixen_core::MixenOpts,
}

impl Default for ServeOpts {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 128,
            batch_cap: 16,
            default_deadline_ms: 2_000,
            refresh_iters: 4,
            max_iters: 200,
            tol: 1e-7,
            damping: 0.85,
            honor_signals: false,
            mixen: mixen_core::MixenOpts::default(),
        }
    }
}

/// An admitted connection waiting for a worker.
pub(crate) struct Job {
    stream: TcpStream,
    enqueued: Instant,
}

/// State shared by every server thread.
pub(crate) struct Shared {
    pub(crate) opts: ServeOpts,
    pub(crate) graph: Arc<Graph>,
    pub(crate) cell: SnapCell<RankSnapshot>,
    pub(crate) metrics: Metrics,
    pub(crate) admission: Admission<Job>,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || (self.opts.honor_signals && signal::requested())
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// Constructor namespace: [`Server::start`] builds the thread set and hands
/// back a [`ServerHandle`].
pub struct Server;

/// A running server: its bound address plus the drain/join controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, computes and publishes the first rank snapshot, then starts
    /// the accept loop and request workers. Returns once the server is
    /// fully ready: a request issued after `start` returns is never told
    /// "warming up".
    pub fn start(graph: Arc<Graph>, opts: ServeOpts) -> Result<ServerHandle, GraphError> {
        let listener = TcpListener::bind(&opts.addr).map_err(GraphError::Io)?;
        let addr = listener.local_addr().map_err(GraphError::Io)?;
        listener.set_nonblocking(true).map_err(GraphError::Io)?;

        let queue_cap = opts.queue_cap.max(1);
        let shared = Arc::new(Shared {
            cell: SnapCell::new(Arc::new(RankSnapshot::empty(graph.n()))),
            metrics: Metrics::default(),
            admission: Admission::new(queue_cap),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            graph: Arc::clone(&graph),
            opts,
        });

        let ranker = {
            let shared = Arc::clone(&shared);
            let graph = Arc::clone(&graph);
            std::thread::Builder::new()
                .name("mixen-serve-rank".into())
                .spawn(move || ranking_loop(&shared, &graph, &shared.cell))
                .map_err(GraphError::Io)?
        };
        // Block until the first snapshot is live so no request ever reads
        // the zeroed placeholder.
        let wait_started = Instant::now();
        while shared.cell.version() == 0 {
            if ranker.is_finished() {
                return Err(GraphError::Invariant(
                    "ranking thread exited before publishing the first snapshot".into(),
                ));
            }
            if wait_started.elapsed() > Duration::from_secs(300) {
                return Err(GraphError::Invariant(
                    "first rank snapshot not ready within 300s".into(),
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mixen-serve-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(GraphError::Io)?
        };
        let workers = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mixen-serve-workers".into())
                .spawn(move || {
                    // A dedicated pool: request workers block on the
                    // admission condvar and on sockets, which must never
                    // starve the global compute pool the engine uses.
                    let pool = mixen_pool::ThreadPool::new(shared.opts.workers.max(1));
                    pool.scope(|s| {
                        for _ in 0..shared.opts.workers.max(1) {
                            let shared = Arc::clone(&shared);
                            s.spawn(move || worker_loop(&shared));
                        }
                    });
                })
                .map_err(GraphError::Io)?
        };

        Ok(ServerHandle {
            addr,
            shared,
            threads: vec![ranker, acceptor, workers],
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain; returns immediately. Pair with
    /// [`ServerHandle::join`].
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Waits until every thread has drained and exited.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Requests a drain and waits for it to finish.
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }

    /// Waits for the drain, then reports `(requests_served,
    /// requests_rejected)` — the final tallies, since every thread has
    /// exited by the time they are read.
    pub fn join_and_report(self) -> (u64, u64) {
        let ServerHandle {
            shared, threads, ..
        } = self;
        for t in threads {
            let _ = t.join();
        }
        (
            shared.metrics.requests_served.get(),
            shared.metrics.requests_rejected.get(),
        )
    }

    /// Total requests answered by workers so far (any status).
    pub fn requests_served(&self) -> u64 {
        self.shared.metrics.requests_served.get()
    }

    /// Total connections rejected by admission control (429s).
    pub fn requests_rejected(&self) -> u64 {
        self.shared.metrics.requests_rejected.get()
    }

    /// Version of the currently published snapshot.
    pub fn snapshot_version(&self) -> u64 {
        self.shared.cell.version()
    }
}

/// Non-blocking accept with admission control. On shutdown: stop accepting
/// and close the queue — the drain signal for the workers.
fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        if shared.shutdown_requested() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let job = Job {
                    stream,
                    enqueued: Instant::now(),
                };
                if let Err(job) = shared.admission.try_push(job) {
                    shared.metrics.requests_rejected.inc();
                    // Shed on a detached responder so a slow rejected peer
                    // can never stall the accept loop. The responder is
                    // short-lived: bounded drain + one write, sub-second
                    // timeouts.
                    let _ = std::thread::Builder::new()
                        .name("mixen-serve-reject".into())
                        .spawn(move || reject_connection(job.stream));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    shared.admission.close();
}

/// Answers 429 on a connection that failed admission. The in-flight
/// request is drained (bounded) first: responding and closing with unread
/// bytes in the receive buffer would RST the connection and the client
/// would see a reset instead of the 429.
fn reject_connection(mut stream: TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 4096];
    let mut total = 0usize;
    while total < crate::http::MAX_HEAD_BYTES + crate::http::MAX_BODY_BYTES {
        match stream.read(&mut buf) {
            // EOF, timeout, or reset: the peer is done sending (or gone).
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
    let _ = respond_json(
        &mut stream,
        429,
        &error_json(429, "pending queue full, retry later"),
    );
}

/// One request worker: drain a batch, load one snapshot, answer the batch.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = shared.admission.pop_batch(shared.opts.batch_cap.max(1));
        if batch.is_empty() {
            return; // closed and drained
        }
        shared.metrics.request_batches.inc();
        shared.metrics.max_batch_size.max(batch.len() as u64);
        // One snapshot load serves the whole batch: every response in it is
        // consistent (same version), and the cell is touched once however
        // deep the backlog got.
        let (version, snap) = shared.cell.load();
        for job in batch {
            handle_job(shared, job, version, &snap);
        }
    }
}

/// Parses, enforces the deadline, routes, responds. Any answered request —
/// success or error status — counts as served; only admission rejections
/// count as rejected.
fn handle_job(shared: &Shared, mut job: Job, version: u64, snap: &RankSnapshot) {
    let _ = job.stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = job.stream.set_write_timeout(Some(Duration::from_secs(5)));
    let req = match Request::read_from(&mut job.stream) {
        Ok(req) => req,
        Err(HttpError::Bad(msg)) => {
            let _ = respond_json(&mut job.stream, 400, &error_json(400, msg));
            shared.metrics.requests_served.inc();
            return;
        }
        Err(HttpError::TooLarge(msg)) => {
            let _ = respond_json(&mut job.stream, 413, &error_json(413, msg));
            shared.metrics.requests_served.inc();
            return;
        }
        Err(HttpError::Io(_)) => return, // peer went away; nothing to answer
    };

    let (status, body) = match request_deadline(shared, &req, job.enqueued) {
        Err(response) => response,
        Ok(()) => route(shared, &req, version, snap),
    };
    let _ = respond_json(&mut job.stream, status, &body);
    shared.metrics.requests_served.inc();
}

/// Applies the per-request deadline: queueing time already spent counts
/// against the budget, so a request that aged out in the admission queue is
/// answered 504 without paying for routing. The 504 body reuses the typed
/// [`GraphError::Deadline`] rendering the batch runner emits.
fn request_deadline(shared: &Shared, req: &Request, enqueued: Instant) -> Result<(), (u16, Json)> {
    let budget_ms = match req.query_parse::<u64>("deadline_ms") {
        Ok(v) => v.unwrap_or(shared.opts.default_deadline_ms),
        Err(msg) => return Err((400, error_json(400, msg))),
    };
    if budget_ms == 0 && req.query("deadline_ms").is_none() {
        return Ok(()); // no default configured, none requested
    }
    let elapsed_ms = u64::try_from(enqueued.elapsed().as_millis()).unwrap_or(u64::MAX);
    if elapsed_ms >= budget_ms {
        let err = GraphError::Deadline {
            elapsed_ms,
            budget_ms,
        };
        return Err((504, error_json(504, err.to_string())));
    }
    Ok(())
}

/// Dispatch table: every endpoint answers from the *given* snapshot (and
/// the static graph) — no locks, no engine calls on the request path.
fn route(shared: &Shared, req: &Request, version: u64, snap: &RankSnapshot) -> (u16, Json) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared, version, snap),
        ("GET", "/rank/top") => rank_top(req, version, snap),
        ("GET", "/score") => score(shared, req, version, snap),
        ("GET", "/neighbors") => neighbors(shared, req),
        ("POST", "/scores") => scores_batch(shared, req, version, snap),
        ("GET", "/metrics") => metrics(shared, version, snap),
        ("POST", "/admin/shutdown") => {
            shared.request_shutdown();
            (200, Json::Obj(vec![("draining".into(), Json::Bool(true))]))
        }
        (_, "/healthz" | "/rank/top" | "/score" | "/neighbors" | "/metrics") => (
            405,
            error_json(405, format!("{} not allowed on {}", req.method, req.path)),
        ),
        (_, "/scores" | "/admin/shutdown") => (
            405,
            error_json(405, format!("{} not allowed on {}", req.method, req.path)),
        ),
        _ => (404, error_json(404, format!("no route for {}", req.path))),
    }
}

fn healthz(shared: &Shared, version: u64, snap: &RankSnapshot) -> (u16, Json) {
    let mut obj = vec![
        ("ok".into(), Json::Bool(true)),
        ("nodes".into(), Json::from_u64(shared.graph.n() as u64)),
        ("edges".into(), Json::from_u64(shared.graph.m() as u64)),
    ];
    obj.extend(snap.meta_json(version));
    (200, Json::Obj(obj))
}

fn rank_top(req: &Request, version: u64, snap: &RankSnapshot) -> (u16, Json) {
    let k = match req.query_parse::<usize>("k") {
        Ok(v) => v.unwrap_or(10),
        Err(msg) => return (400, error_json(400, msg)),
    };
    let k = k.min(snap.scores.len());
    let ranked = top_k(&snap.scores, k);
    let nodes: Vec<Json> = ranked
        .into_iter()
        .map(|node| node_score_json(node, snap.scores[node]))
        .collect();
    let mut obj = snap.meta_json(version);
    obj.push(("k".into(), Json::from_u64(k as u64)));
    obj.push(("nodes".into(), Json::Arr(nodes)));
    (200, Json::Obj(obj))
}

fn score(shared: &Shared, req: &Request, version: u64, snap: &RankSnapshot) -> (u16, Json) {
    let node = match required_node(shared, req) {
        Ok(node) => node,
        Err(response) => return response,
    };
    let mut obj = snap.meta_json(version);
    obj.push(("node".into(), Json::from_u64(node as u64)));
    obj.push(("score".into(), Json::from_f64(f64::from(snap.scores[node]))));
    (200, Json::Obj(obj))
}

fn neighbors(shared: &Shared, req: &Request) -> (u16, Json) {
    let node = match required_node(shared, req) {
        Ok(node) => node,
        Err(response) => return response,
    };
    let limit = match req.query_parse::<usize>("limit") {
        Ok(v) => v.unwrap_or(64),
        Err(msg) => return (400, error_json(400, msg)),
    };
    let g = &shared.graph;
    let out = g.out_neighbors(mixen_graph::nid(node));
    let listed: Vec<Json> = out
        .iter()
        .take(limit)
        .map(|&v| Json::from_u64(u64::from(v)))
        .collect();
    (
        200,
        Json::Obj(vec![
            ("node".into(), Json::from_u64(node as u64)),
            (
                "out_degree".into(),
                Json::from_u64(g.out_degree(mixen_graph::nid(node)) as u64),
            ),
            (
                "in_degree".into(),
                Json::from_u64(g.in_degree(mixen_graph::nid(node)) as u64),
            ),
            ("out".into(), Json::Arr(listed)),
        ]),
    )
}

/// `POST /scores` with body `{"nodes": [id, ...]}` — the one endpoint that
/// parses client JSON, so the obs parser's nesting-depth cap is what stands
/// between a hostile body and the worker's stack.
fn scores_batch(shared: &Shared, req: &Request, version: u64, snap: &RankSnapshot) -> (u16, Json) {
    const MAX_BATCH_NODES: usize = 4_096;
    let body = match Json::parse(&req.body) {
        Ok(body) => body,
        Err(e) => return (400, error_json(400, format!("invalid body: {e}"))),
    };
    let Some(Json::Arr(nodes)) = body.get("nodes") else {
        return (
            400,
            error_json(400, "body must be an object with a \"nodes\" array"),
        );
    };
    if nodes.len() > MAX_BATCH_NODES {
        return (
            413,
            error_json(
                413,
                format!(
                    "{} nodes exceeds the {MAX_BATCH_NODES}-node batch limit",
                    nodes.len()
                ),
            ),
        );
    }
    let mut out = Vec::with_capacity(nodes.len());
    for entry in nodes {
        let Some(node) = entry.as_u64() else {
            return (400, error_json(400, "\"nodes\" entries must be node IDs"));
        };
        let Ok(node) = usize::try_from(node) else {
            return (404, error_json(404, format!("unknown node {node}")));
        };
        if node >= shared.graph.n() {
            return (404, error_json(404, format!("unknown node {node}")));
        }
        out.push(node_score_json(node, snap.scores[node]));
    }
    let mut obj = snap.meta_json(version);
    obj.push(("scores".into(), Json::Arr(out)));
    (200, Json::Obj(obj))
}

fn metrics(shared: &Shared, version: u64, snap: &RankSnapshot) -> (u16, Json) {
    // Serve-side counters and the engine counters frozen into the snapshot,
    // merged by name into one catalogue.
    let mut merged = shared.metrics.snapshot();
    merged.merge(&snap.engine_counters);
    (
        200,
        Json::Obj(vec![
            ("snapshot_version".into(), Json::from_u64(version)),
            (
                "uptime_s".into(),
                Json::from_f64(shared.started.elapsed().as_secs_f64()),
            ),
            (
                "queue_depth".into(),
                Json::from_u64(shared.admission.len() as u64),
            ),
            ("counters".into(), merged.to_json()),
        ]),
    )
}

/// Parses the required `node` query parameter and bounds-checks it.
fn required_node(shared: &Shared, req: &Request) -> Result<usize, (u16, Json)> {
    let node = match req.query_parse::<u64>("node") {
        Ok(Some(node)) => node,
        Ok(None) => return Err((400, error_json(400, "query parameter 'node' is required"))),
        Err(msg) => return Err((400, error_json(400, msg))),
    };
    match usize::try_from(node) {
        Ok(node) if node < shared.graph.n() => Ok(node),
        _ => Err((404, error_json(404, format!("unknown node {node}")))),
    }
}

fn node_score_json(node: usize, score: f32) -> Json {
    Json::Obj(vec![
        ("node".into(), Json::from_u64(node as u64)),
        ("score".into(), Json::from_f64(f64::from(score))),
    ])
}
