//! Weighted-graph workloads: travel-time routing on a road network and
//! weighted influence propagation — the semiring extension of the SpMV
//! formulation (DESIGN.md: `(min,+)` for shortest paths, `(+,×)` for
//! weighted SpMV), running on the weighted Mixen engine.
//!
//! ```sh
//! cargo run --release --example logistics_routing
//! ```

use mixen_algos::{dijkstra, sssp, weighted_spmv};
use mixen_core::{MixenOpts, WMixenEngine};
use mixen_graph::{Dataset, Scale, WGraph};
use std::time::Instant;

fn main() {
    // A road network whose edges carry travel times (minutes).
    let g = Dataset::Road.generate(Scale::Tiny, 19);
    let roads = WGraph::with_hash_weights(&g, 1.0, 10.0, 3);
    println!(
        "road network: {} intersections, {} road segments, travel times 1-10 min",
        roads.n(),
        roads.m()
    );

    let t = Instant::now();
    let engine = WMixenEngine::new(&roads, MixenOpts::default());
    println!("weighted preprocessing: {:.3}s", t.elapsed().as_secs_f64());

    // Depot = a busy junction; compute travel times to everywhere.
    let depot = (0..roads.n() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap();
    let t = Instant::now();
    let times = sssp(&engine, depot, 100_000);
    println!(
        "sssp from depot {depot}: {:.3}s (Bellman-Ford rounds over the blocked engine)",
        t.elapsed().as_secs_f64()
    );

    // Validate against Dijkstra.
    let oracle = dijkstra(&roads, depot);
    let max_dev = times
        .iter()
        .zip(&oracle)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_dev < 1e-3, "deviation vs Dijkstra: {max_dev}");
    println!("verified against serial Dijkstra (max deviation {max_dev:.1e})");

    let reachable: Vec<f32> = times.iter().copied().filter(|t| t.is_finite()).collect();
    let mean = reachable.iter().sum::<f32>() / reachable.len() as f32;
    let max = reachable.iter().copied().fold(0.0f32, f32::max);
    println!(
        "coverage: {} of {} intersections reachable, mean travel {mean:.0} min, farthest {max:.0} min",
        reachable.len(),
        roads.n()
    );
    // Delivery-window histogram.
    let windows = [30.0f32, 60.0, 120.0, 240.0, f32::INFINITY];
    let mut prev = 0.0;
    for &w in &windows {
        let count = reachable.iter().filter(|&&t| t > prev && t <= w).count();
        let label = if w.is_finite() {
            format!("<= {w:>4.0} min")
        } else {
            "beyond".into()
        };
        println!("  {label:>12}: {count:>6} stops");
        prev = w;
    }

    // Weighted influence: one weighted SpMV spreads depot capacity along
    // road quality (1/time as conductance).
    let conductance = WGraph::from_graph(&g, |u, v| 1.0 / roads.weight(u, v).unwrap_or(1.0));
    let engine2 = WMixenEngine::new(&conductance, MixenOpts::default());
    let mut x = vec![0.0f32; roads.n()];
    x[depot as usize] = 100.0;
    let spread = weighted_spmv(&engine2, &x);
    let direct: Vec<(usize, f32)> = spread
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, s)| s > 0.0)
        .collect();
    println!(
        "\nweighted SpMV: depot capacity reaches {} direct neighbours; strongest link gets {:.1} units",
        direct.len(),
        direct.iter().map(|&(_, s)| s).fold(0.0f32, f32::max)
    );
}
