//! Web-search ranking on a wiki-like hyperlink graph — the paper's original
//! application domain (§1: web search; §2.2: PageRank, HITS, SALSA).
//!
//! Runs the three classic link-analysis algorithms on the same graph
//! through the same Mixen engine (HITS/SALSA additionally use an engine on
//! the reversed graph for the hub direction) and compares the rankings they
//! produce with the InDegree heuristic, echoing the paper's observation
//! that they "perform similarly to the InDegree algorithm".
//!
//! ```sh
//! cargo run --release --example web_ranking
//! ```

use mixen_algos::{hits, indegree, pagerank, ranking, salsa, PageRankOpts};
use mixen_core::{MixenEngine, MixenOpts};
use mixen_graph::{Dataset, Scale};

fn main() {
    let g = Dataset::Wiki.generate(Scale::Tiny, 11);
    println!("wiki-like hyperlink graph: n = {}, m = {}", g.n(), g.m());

    let engine = MixenEngine::new(&g, MixenOpts::default());
    let rev = g.reversed();
    let engine_rev = MixenEngine::new(&rev, MixenOpts::default());

    let ind = indegree(&engine);
    let pr = pagerank(&g, &engine, PageRankOpts::default(), 30);
    let h = hits(g.n(), &engine, &engine_rev, 15);
    let s = salsa(&g, &engine, &engine_rev, 15);

    println!("\ntop pages by each algorithm:");
    for (name, scores) in [
        ("InDegree", &ind),
        ("PageRank", &pr),
        ("HITS auth", &h.authority),
        ("SALSA auth", &s.authority),
    ] {
        println!("  {name:>10}: {:?}", ranking::top_k(scores, 5));
    }

    let k = 50;
    println!("\ntop-{k} overlap with InDegree (the paper: advanced algorithms rank similarly):");
    for (name, scores) in [
        ("PageRank", &pr),
        ("HITS auth", &h.authority),
        ("SALSA auth", &s.authority),
    ] {
        println!(
            "  {name:>10}: {:.0}% overlap, tau = {:.2}",
            100.0 * ranking::top_k_overlap(&ind, scores, k),
            ranking::kendall_tau_sampled(&ind, scores, 100_000, 7)
        );
    }

    println!("\nbest hub pages (HITS hub score):");
    for v in ranking::top_k(&h.hub, 5).iter() {
        println!(
            "  page {v}: hub = {:.4}, links out to {} pages",
            h.hub[*v],
            g.out_degree(*v as u32)
        );
    }
}
