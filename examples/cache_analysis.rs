//! Cache-behaviour analysis of the three execution strategies — a
//! self-contained tour of the `mixen-cachesim` crate, reproducing the
//! paper's §3 motivation numbers on a generated graph: the pulling flow's
//! random reads vs blocking's bounded bin switches, and where Mixen's
//! filtered variant lands.
//!
//! ```sh
//! cargo run --release --example cache_analysis
//! ```

use mixen_baselines::BlockEngine;
use mixen_cachesim::{trace_block, trace_mixen, trace_pull, trace_push, CacheConfig};
use mixen_core::{MixenEngine, MixenOpts, PerfModel};
use mixen_graph::{Dataset, Scale};

fn main() {
    let g = Dataset::Wiki.generate(Scale::Tiny, 13);
    println!(
        "wiki-like graph: n = {}, m = {} (1/1024 of the paper's wiki)",
        g.n(),
        g.m()
    );
    // Scale the paper's hierarchy with the dataset so cache pressure is
    // shape-preserving (§6.1: L1 64 KB / L2 1 MB / LLC 27.5 MB).
    let cfg = CacheConfig::scaled_paper(1024);
    println!(
        "scaled hierarchy: L1 {} KB / L2 {} KB / LLC {} KB, 64 B lines\n",
        cfg.levels[0].capacity / 1024,
        cfg.levels[1].capacity / 1024,
        cfg.levels[2].capacity / 1024
    );

    let mixen = MixenEngine::new(&g, MixenOpts::default());
    let gpop = BlockEngine::with_default_blocks(&g);
    let reports = [
        ("Pull  (GraphMat)", trace_pull(&g, &cfg)),
        ("Push  (Ligra)", trace_push(&g, &cfg)),
        ("Block (GPOP)", trace_block(&g, gpop.blocked(), &cfg)),
        ("Mixen", trace_mixen(&mixen, &cfg)),
    ];

    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>12}",
        "variant", "DRAM KB/iter", "L2 miss %", "LLC miss %", "rand jumps"
    );
    for (name, r) in &reports {
        println!(
            "{:<18} {:>12.1} {:>9.0}% {:>11.0}% {:>12}",
            name,
            r.dram_bytes() as f64 / 1024.0,
            r.l2().miss_ratio() * 100.0,
            r.llc().miss_ratio() * 100.0,
            r.random_jumps
        );
    }

    // Compare with the paper's closed-form §5 model.
    let model = PerfModel::from_filtered(mixen.filtered(), mixen.blocked().block_side());
    println!("\nanalytic model (§5, element counts):");
    println!(
        "  pull traffic 2m+2n   = {:>10.0}   random = m      = {:.0}",
        model.pull_traffic(),
        model.pull_random()
    );
    println!(
        "  block traffic 4m+3n  = {:>10.0}   random = (n/c)^2  = {:.0}",
        model.block_traffic(),
        model.block_random()
    );
    println!(
        "  mixen traffic 4an+4bm= {:>10.0}   random = (an/c)^2 = {:.0}",
        model.mixen_traffic(),
        model.mixen_random()
    );
    println!(
        "\n(alpha = {:.2}, beta = {:.2}: Mixen iterates over {:.0}% of the nodes\n\
         and {:.0}% of the edges each round; the rest was handled once in the\n\
         Pre-/Post-Phases.)",
        model.alpha,
        model.beta,
        model.alpha * 100.0,
        model.beta * 100.0
    );
}
