//! Social-network influence analysis on a weibo-like graph — the workload
//! the paper's introduction motivates (§1: social network analysis).
//!
//! A microblog follower graph is extremely skewed: ~1 % of accounts
//! (celebrities) receive ~99 % of the follow edges, and 99 % of accounts
//! only follow (seed nodes). This example generates such a graph, shows why
//! it is Mixen's best case (α = 0.01), and ranks influencers with InDegree
//! and PageRank, cross-checking Mixen against the dense-pull baseline.
//!
//! ```sh
//! cargo run --release --example social_influence
//! ```

use mixen_algos::{indegree, pagerank, PageRankOpts};
use mixen_baselines::PullEngine;
use mixen_core::{MixenEngine, MixenOpts, PerfModel};
use mixen_graph::{Dataset, Scale, StructuralStats};
use std::time::Instant;

fn main() {
    let g = Dataset::Weibo.generate(Scale::Tiny, 7);
    let s = StructuralStats::of(&g);
    println!(
        "weibo-like follower graph: n = {}, m = {}, {:.1}% seeds, E_hub = {:.0}%",
        s.n,
        s.m,
        s.frac_seed * 100.0,
        s.e_hub * 100.0
    );

    let t = Instant::now();
    let engine = MixenEngine::new(&g, MixenOpts::default());
    println!(
        "mixen preprocessing: {:.3}s (filter {:.3}s + partition {:.3}s)",
        t.elapsed().as_secs_f64(),
        engine.filter_seconds(),
        engine.partition_seconds()
    );
    println!(
        "regular subgraph kept for iteration: {} of {} nodes (alpha = {:.3}), {} of {} edges (beta = {:.3})",
        engine.filtered().num_regular(),
        g.n(),
        engine.filtered().alpha(),
        engine.filtered().reg_csr().nnz(),
        g.m(),
        engine.filtered().beta()
    );

    // §5 model: why weibo is the best case.
    let model = PerfModel::from_filtered(engine.filtered(), engine.blocked().block_side());
    println!(
        "per-iteration model: Mixen {:.1} MB vs Pull {:.1} MB of element traffic",
        model.mixen_traffic_bytes(4) / 1e6,
        model.pull_traffic() * 4.0 / 1e6
    );

    // Influencer rankings.
    let t = Instant::now();
    let followers = indegree(&engine);
    let rank = pagerank(&g, &engine, PageRankOpts::default(), 20);
    println!("ranking time: {:.3}s", t.elapsed().as_secs_f64());

    // Cross-check against the pull baseline.
    let pull = PullEngine::new(&g);
    let rank_pull = pagerank(&g, &pull, PageRankOpts::default(), 20);
    let drift = rank
        .iter()
        .zip(&rank_pull)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(drift < 1e-5, "engines disagree: {drift}");

    let mut top: Vec<(usize, f32, f32)> = (0..g.n()).map(|v| (v, followers[v], rank[v])).collect();
    top.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("top influencers (account, followers, pagerank):");
    for (v, fol, pr) in top.iter().take(5) {
        println!("  #{v:<8} {fol:>8.0} followers   pr = {pr:.5}");
    }
    // Influence concentrates: the top-5 hold a large share of total rank.
    let total: f32 = rank.iter().sum();
    let top5: f32 = top.iter().take(5).map(|t| t.2).sum();
    println!(
        "top-5 accounts hold {:.1}% of total rank mass",
        100.0 * top5 / total
    );
}
