//! Quickstart: build a graph, preprocess it with Mixen, run PageRank, and
//! inspect what the connectivity filter discovered.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mixen_algos::{pagerank, pagerank_until, PageRankOpts};
use mixen_core::{MixenEngine, MixenOpts, RegularOrdering};
use mixen_graph::{Graph, StructuralStats};

fn main() {
    // A small web: 0-2 form a cycle (regular nodes), 3 and 4 only link out
    // (seeds), 5 only receives (sink), 6 is isolated.
    let g = Graph::from_pairs(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 0),
            (3, 2),
            (4, 1),
            (1, 5),
            (2, 5),
        ],
    );

    let stats = StructuralStats::of(&g);
    println!("graph: n = {}, m = {}", stats.n, stats.m);
    println!(
        "classes: {:.0}% regular, {:.0}% seed, {:.0}% sink, {:.0}% isolated",
        stats.frac_regular * 100.0,
        stats.frac_seed * 100.0,
        stats.frac_sink * 100.0,
        stats.frac_isolated * 100.0
    );

    // Preprocess: one scan classifies + relabels, then 2-D blocking. The
    // relabel policy is selectable (`MixenOpts::ordering`, or `--reorder`
    // on the CLI); `new_auto` lets the §5 performance model pick one from
    // the measured (α, β, hub fraction).
    let engine = MixenEngine::new_auto(&g, MixenOpts::default());
    let f = engine.filtered();
    println!(
        "reorder: model picked '{}' (relabel took {:.1} µs)",
        f.ordering().name(),
        f.relabel_seconds() * 1e6
    );
    // A fixed policy works too, e.g. Degree-Based Grouping:
    let _dbg_engine = MixenEngine::new(
        &g,
        MixenOpts {
            ordering: RegularOrdering::Dbg,
            ..MixenOpts::default()
        },
    );
    println!(
        "filter: {} regular ({} hubs) / {} seed / {} sink / {} isolated; alpha = {:.2}, beta = {:.2}",
        f.num_regular(),
        f.num_hub(),
        f.num_seed(),
        f.num_sink(),
        f.num_isolated(),
        f.alpha(),
        f.beta()
    );

    // Fixed-iteration PageRank (the paper's timing configuration) ...
    let scores = pagerank(&g, &engine, PageRankOpts::default(), 20);
    // ... and the convergence-driven variant.
    let (converged, iters) = pagerank_until(&g, &engine, PageRankOpts::default(), 1e-9, 100);
    println!("pagerank converged in {iters} iterations");

    let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top nodes by PageRank:");
    for (node, score) in ranked.iter().take(3) {
        println!("  node {node}: {score:.4}");
    }
    let drift: f32 = scores
        .iter()
        .zip(&converged)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    println!("max drift between 20 fixed iterations and convergence: {drift:.2e}");
}
