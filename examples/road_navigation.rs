//! Reachability analysis on a road network — the paper's non-skewed,
//! high-diameter control case (graph *road*), where design trade-offs
//! invert: pulling beats blocking (Fig. 4 discussion) and BFS is dominated
//! by the enormous level count.
//!
//! ```sh
//! cargo run --release --example road_navigation
//! ```

use mixen_algos::{bfs, default_root, summarize, Engine};
use mixen_baselines::{PullEngine, PushEngine};
use mixen_core::{MixenEngine, MixenOpts};
use mixen_graph::{Dataset, Scale, StructuralStats};
use std::time::Instant;

fn time_bfs<E: Engine>(name: &str, engine: &E, root: u32) -> Vec<i32> {
    let t = Instant::now();
    let depths = bfs(engine, root);
    let (reached, diameter) = summarize(&depths);
    println!(
        "  {name:>22}: {:.3}s, reached {reached} intersections, max depth {diameter}",
        t.elapsed().as_secs_f64()
    );
    depths
}

fn main() {
    let g = Dataset::Road.generate(Scale::Tiny, 5);
    let s = StructuralStats::of(&g);
    println!(
        "road network: n = {}, m = {}, avg degree {:.1}, skewed: {}",
        s.n,
        s.m,
        g.avg_degree(),
        s.is_skewed()
    );

    let root = default_root(&g);
    println!("BFS from intersection {root} (highest degree junction):");

    let mixen = MixenEngine::new(&g, MixenOpts::default());
    let a = time_bfs("Mixen (blocked)", &mixen, root);
    let b = time_bfs("Ligra-style (dir-opt)", &PushEngine::new(&g), root);
    let c = time_bfs("GraphMat (dense pull)", &PullEngine::new(&g), root);
    assert_eq!(a, b);
    assert_eq!(a, c);

    // Depth histogram: road networks reach most nodes at large depths — the
    // property that makes per-level dense scans (GraphMat) hopeless.
    let (_, max_depth) = summarize(&a);
    let buckets = 8usize;
    let mut hist = vec![0usize; buckets];
    for &d in &a {
        if d >= 0 {
            let b = (d as usize * buckets / (max_depth as usize + 1)).min(buckets - 1);
            hist[b] += 1;
        }
    }
    println!("\nnodes per depth range (diameter ≈ {max_depth}):");
    for (i, count) in hist.iter().enumerate() {
        let lo = i * (max_depth as usize + 1) / buckets;
        let hi = (i + 1) * (max_depth as usize + 1) / buckets;
        let bar = "#".repeat(count * 40 / a.len().max(1) + 1);
        println!("  depth {lo:>5}..{hi:<5} {count:>7} {bar}");
    }
    println!(
        "\n(A dense-pull BFS scans all {} edges once per depth level — ~{} scans\n\
         on this diameter — which is why GraphMat's road BFS is the slowest\n\
         entry of the paper's Table 3.)",
        g.m(),
        max_depth
    );
}
