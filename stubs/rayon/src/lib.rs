//! Sequential shim of the `rayon` API subset this workspace uses.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the real rayon cannot be fetched. This stub keeps the exact call-site API
//! (`par_iter`, `into_par_iter`, `fold`/`reduce`, `par_sort_unstable`, …)
//! but executes everything sequentially on the calling thread. Correctness
//! is unaffected: every parallel pattern in the workspace (disjoint-slot
//! writes through atomic cursors, per-chunk fold/reduce) is valid under
//! sequential execution, which is simply the one-thread schedule.
//!
//! [`ParIter`] deliberately does NOT implement [`Iterator`]: the adapter
//! names (`map`, `filter`, `fold`, …) would otherwise be ambiguous at every
//! call site that has both the std prelude and `rayon::prelude` in scope.

/// Number of worker threads (always 1: everything runs on the caller).
pub fn current_num_threads() -> usize {
    1
}

/// Runs both closures (sequentially) and returns their results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Wrapper turning a sequential [`Iterator`] into a "parallel" iterator.
pub struct ParIter<I>(I);

pub mod iter {
    use super::ParIter;

    /// Mirror of `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    macro_rules! impl_into_par_for_range {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = ParIter<std::ops::Range<$t>>;

                fn into_par_iter(self) -> Self::Iter {
                    ParIter(self)
                }
            }
        )*};
    }
    impl_into_par_for_range!(u16, u32, u64, usize, i32, i64);

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<std::vec::IntoIter<T>>;

        fn into_par_iter(self) -> Self::Iter {
            ParIter(self.into_iter())
        }
    }

    impl<I: Iterator> IntoParallelIterator for ParIter<I> {
        type Item = I::Item;
        type Iter = Self;

        fn into_par_iter(self) -> Self {
            self
        }
    }

    /// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()`).
    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = ParIter<std::slice::Iter<'a, T>>;

        fn par_iter(&'a self) -> Self::Iter {
            ParIter(self.iter())
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = ParIter<std::slice::Iter<'a, T>>;

        fn par_iter(&'a self) -> Self::Iter {
            ParIter(self.as_slice().iter())
        }
    }

    /// Mirror of `rayon::iter::IntoParallelRefMutIterator`
    /// (`.par_iter_mut()`).
    pub trait IntoParallelRefMutIterator<'a> {
        type Item: 'a;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = ParIter<std::slice::IterMut<'a, T>>;

        fn par_iter_mut(&'a mut self) -> Self::Iter {
            ParIter(self.iter_mut())
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = ParIter<std::slice::IterMut<'a, T>>;

        fn par_iter_mut(&'a mut self) -> Self::Iter {
            ParIter(self.as_mut_slice().iter_mut())
        }
    }

    /// The adapter surface of `rayon::iter::ParallelIterator`, implemented
    /// on top of a plain sequential iterator.
    pub trait ParallelIterator: Sized {
        type Item;
        type Inner: Iterator<Item = Self::Item>;

        fn into_seq(self) -> Self::Inner;

        fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<Self::Inner, F>>
        where
            F: FnMut(Self::Item) -> R,
        {
            ParIter(self.into_seq().map(f))
        }

        fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<Self::Inner, F>>
        where
            F: FnMut(&Self::Item) -> bool,
        {
            ParIter(self.into_seq().filter(f))
        }

        fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<Self::Inner, F>>
        where
            F: FnMut(Self::Item) -> Option<R>,
        {
            ParIter(self.into_seq().filter_map(f))
        }

        fn flat_map<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<Self::Inner, U, F>>
        where
            F: FnMut(Self::Item) -> U,
            U: IntoIterator,
        {
            ParIter(self.into_seq().flat_map(f))
        }

        fn flat_map_iter<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<Self::Inner, U, F>>
        where
            F: FnMut(Self::Item) -> U,
            U: IntoIterator,
        {
            ParIter(self.into_seq().flat_map(f))
        }

        fn enumerate(self) -> ParIter<std::iter::Enumerate<Self::Inner>> {
            ParIter(self.into_seq().enumerate())
        }

        #[allow(clippy::type_complexity)]
        fn zip<Z>(
            self,
            other: Z,
        ) -> ParIter<std::iter::Zip<Self::Inner, <Z::Iter as ParallelIterator>::Inner>>
        where
            Z: IntoParallelIterator,
        {
            ParIter(self.into_seq().zip(other.into_par_iter().into_seq()))
        }

        fn copied<'a, T>(self) -> ParIter<std::iter::Copied<Self::Inner>>
        where
            Self: ParallelIterator<Item = &'a T>,
            T: 'a + Copy,
        {
            ParIter(self.into_seq().copied())
        }

        fn cloned<'a, T>(self) -> ParIter<std::iter::Cloned<Self::Inner>>
        where
            Self: ParallelIterator<Item = &'a T>,
            T: 'a + Clone,
        {
            ParIter(self.into_seq().cloned())
        }

        fn for_each<F>(self, f: F)
        where
            F: FnMut(Self::Item),
        {
            self.into_seq().for_each(f)
        }

        /// Rayon's two-closure fold: sequentially there is exactly one
        /// "chunk", so this yields a single accumulator.
        fn fold<ID, B, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<B>>
        where
            ID: Fn() -> B,
            F: FnMut(B, Self::Item) -> B,
        {
            ParIter(std::iter::once(self.into_seq().fold(identity(), fold_op)))
        }

        fn reduce<ID, F>(self, identity: ID, reduce_op: F) -> Self::Item
        where
            ID: Fn() -> Self::Item,
            F: FnMut(Self::Item, Self::Item) -> Self::Item,
        {
            self.into_seq().fold(identity(), reduce_op)
        }

        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.into_seq().collect()
        }

        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.into_seq().sum()
        }

        fn count(self) -> usize {
            self.into_seq().count()
        }

        fn any<F>(self, f: F) -> bool
        where
            F: FnMut(Self::Item) -> bool,
        {
            self.into_seq().any(f)
        }

        fn all<F>(self, f: F) -> bool
        where
            F: FnMut(Self::Item) -> bool,
        {
            self.into_seq().all(f)
        }

        fn max(self) -> Option<Self::Item>
        where
            Self::Item: Ord,
        {
            self.into_seq().max()
        }

        fn min(self) -> Option<Self::Item>
        where
            Self::Item: Ord,
        {
            self.into_seq().min()
        }

        fn with_min_len(self, _len: usize) -> Self {
            self
        }

        fn with_max_len(self, _len: usize) -> Self {
            self
        }
    }

    /// Indexed variant; sequentially identical to [`ParallelIterator`].
    pub trait IndexedParallelIterator: ParallelIterator {}

    impl<I: Iterator> ParallelIterator for ParIter<I> {
        type Item = I::Item;
        type Inner = I;

        fn into_seq(self) -> I {
            self.0
        }
    }

    impl<I: Iterator> IndexedParallelIterator for ParIter<I> {}

    /// Mirror of `rayon::slice::ParallelSliceMut` (`par_sort_*`).
    pub trait ParallelSliceMut<T> {
        fn par_sort_unstable(&mut self)
        where
            T: Ord;

        fn par_sort_unstable_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering;

        fn par_sort(&mut self)
        where
            T: Ord;

        fn par_sort_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }

        fn par_sort_unstable_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.sort_unstable_by(compare);
        }

        fn par_sort(&mut self)
        where
            T: Ord,
        {
            self.sort();
        }

        fn par_sort_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.sort_by(compare);
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

pub mod slice {
    pub use crate::iter::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn fold_then_reduce_matches_histogram() {
        let hist = [0u32, 1, 1, 2]
            .par_iter()
            .copied()
            .fold(
                || vec![0usize; 3],
                |mut h, r| {
                    h[r as usize] += 1;
                    h
                },
            )
            .reduce(
                || vec![0usize; 3],
                |mut a, b| {
                    a.iter_mut().zip(b).for_each(|(x, y)| *x += y);
                    a
                },
            );
        assert_eq!(hist, vec![1, 2, 1]);
    }

    #[test]
    fn zip_and_mut_iteration() {
        let mut a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, y)| *x += *y);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn par_sorts() {
        let mut v = vec![3, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
        v.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, vec![3, 2, 1]);
    }
}
