//! Vendored `rayon` facade that lowers data-parallel pipelines onto the
//! workspace's own [`mixen_pool`] work-stealing thread pool.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the real rayon cannot be fetched. This crate keeps the subset of rayon's
//! API that Mixen uses so that every call site across `mixen-graph`,
//! `mixen-core`, `mixen-algos` and `mixen-baselines` compiles unchanged
//! against a dependency-free backend — but unlike the original sequential
//! stub, execution is now **genuinely parallel**:
//!
//! * Sources (`Range<int>`, `&[T]`, `&mut [T]`, `Vec<T>`, and `zip` /
//!   `enumerate` combinations of them) are split into at most
//!   `threads × 4` contiguous, ordered parts.
//! * Each part is pushed onto the ambient [`mixen_pool`] pool as one task;
//!   adapters (`map`, `filter`, `flat_map_iter`, …) run fused inside the
//!   part's task, so a whole pipeline stage is a single chunked job.
//! * Terminal operations (`collect`, `fold`, `reduce`, `sum`, …) gather the
//!   per-part results into slots indexed by part number and combine them
//!   **in part order**, so for a fixed thread count every result —
//!   including float reductions — is deterministic.
//!
//! # Single-thread fallback
//!
//! When the ambient pool has one lane (`MIXEN_THREADS=1`, `--threads 1`, or
//! `mixen_pool::with_threads(1, …)`), every pipeline collapses to exactly
//! one part that runs inline on the caller. That reproduces the historical
//! sequential shim bit-for-bit — same iteration order, same float-sum
//! association — which is what the engine's determinism tests pin down.
//! With more lanes, results can differ from the 1-thread run only where a
//! reduction's combine order matters (float addition); part boundaries are
//! a pure function of `(len, threads)`, so any given thread count is still
//! reproducible run-to-run.
//!
//! # Deviations from real rayon
//!
//! * `flat_map` behaves like `flat_map_iter` (inner iterators are consumed
//!   sequentially within the part that produced them).
//! * `par_sort` / `par_sort_by` (stable) run sequentially; the unstable
//!   sorts parallelize via quicksort over `mixen_pool::join`.
//! * `with_min_len` / `with_max_len` are accepted and ignored.
//! * `zip` and `enumerate` are only available on splittable sources
//!   (ranges, slices, and their `zip`/`enumerate` compositions), not on
//!   arbitrary adapter pipelines.

use std::cmp::Ordering as CmpOrdering;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Total parallelism of the ambient pool (see [`mixen_pool`]).
pub fn current_num_threads() -> usize {
    mixen_pool::current_num_threads()
}

/// Runs both closures, potentially in parallel, via [`mixen_pool::join`].
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    mixen_pool::join(a, b)
}

/// How many parts a pipeline is split into per pool lane, so work-stealing
/// can rebalance uneven parts. A single-lane pool uses exactly one part
/// (the sequential fallback).
const PARTS_PER_THREAD: usize = 4;

fn default_parts() -> usize {
    let threads = mixen_pool::current_num_threads();
    if threads <= 1 {
        1
    } else {
        threads * PARTS_PER_THREAD
    }
}

// ---------------------------------------------------------------------------
// Execution plumbing: sinks, producers, part slots
// ---------------------------------------------------------------------------

/// Consumer side of a pipeline: receives each part's item stream. Adapters
/// wrap the downstream sink; sources call `accept` once per part, from the
/// pool task that owns the part.
#[doc(hidden)]
pub trait PartSink<T>: Sync {
    fn accept<I: Iterator<Item = T>>(&self, part: usize, items: I);
}

/// A splittable, exactly-sized source: the parallel analogue of a slice.
/// `split_at` must preserve order (left part first), which is what keeps
/// every pipeline's part numbering — and thus every reduction — ordered.
#[doc(hidden)]
#[allow(clippy::len_without_is_empty)] // splitting only needs the exact length
pub trait Producer: Send + Sized {
    type Item;
    type IntoIter: Iterator<Item = Self::Item>;
    fn len(&self) -> usize;
    fn split_at(self, index: usize) -> (Self, Self);
    fn into_iter(self) -> Self::IntoIter;
}

/// Splits `producer` into `parts` contiguous chunks and runs one pool task
/// per chunk. Part boundaries depend only on `(len, parts)`.
fn drive_producer<P, S>(producer: P, parts: usize, sink: &S)
where
    P: Producer,
    S: PartSink<P::Item>,
{
    let len = producer.len();
    let parts = parts.clamp(1, len.max(1));
    if parts == 1 {
        sink.accept(0, producer.into_iter());
        return;
    }
    mixen_pool::scope(|s| {
        let mut rest = Some(producer);
        let mut offset = 0usize;
        for part in 0..parts {
            let end = len * (part + 1) / parts;
            let take = end - offset;
            offset = end;
            let chunk = if part + 1 == parts {
                rest.take()
                    .expect("drive_producer: producer already consumed")
            } else {
                let (head, tail) = rest
                    .take()
                    .expect("drive_producer: producer already consumed")
                    .split_at(take);
                rest = Some(tail);
                head
            };
            s.spawn(move || sink.accept(part, chunk.into_iter()));
        }
    });
}

/// One result slot per part; filled concurrently, drained in part order.
struct PartSlots<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T> PartSlots<T> {
    fn new(parts: usize) -> Self {
        PartSlots {
            slots: (0..parts).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn set(&self, part: usize, value: T) {
        *self.slots[part].lock().unwrap() = Some(value);
    }

    /// Filled slots, in part order (parts never driven are skipped).
    fn into_ordered(self) -> impl Iterator<Item = T> {
        self.slots
            .into_iter()
            .filter_map(|slot| slot.into_inner().unwrap())
    }
}

// ---------------------------------------------------------------------------
// The iterator traits
// ---------------------------------------------------------------------------

/// Mixen's subset of rayon's `ParallelIterator`.
pub trait ParallelIterator: Sized {
    type Item;

    /// Feeds this pipeline, split into at most `parts` parts, into `sink`.
    #[doc(hidden)]
    fn drive<S: PartSink<Self::Item>>(self, parts: usize, sink: &S);

    // ---- adapters -------------------------------------------------------

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, f }
    }

    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Like rayon's `flat_map_iter`: the inner iterators run sequentially
    /// within the part that produced them.
    fn flat_map_iter<F, U>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
        U: IntoIterator,
    {
        FlatMapIter { base: self, f }
    }

    /// Alias for [`flat_map_iter`](ParallelIterator::flat_map_iter) (see
    /// the crate-level deviations list).
    fn flat_map<F, U>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
        U: IntoIterator,
    {
        FlatMapIter { base: self, f }
    }

    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + 'a,
    {
        Copied { base: self }
    }

    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Clone + 'a,
    {
        Cloned { base: self }
    }

    /// Pairs this pipeline with another length-aware source. Both sides
    /// must be splittable (sources or `zip`/`enumerate` of sources).
    fn zip<Z>(self, other: Z) -> ZipIter<Self::Producer, <Z::Iter as IntoProducer>::Producer>
    where
        Self: IntoProducer,
        Z: IntoParallelIterator,
        Z::Iter: IntoProducer,
    {
        ZipIter {
            a: self.into_producer(),
            b: other.into_par_iter().into_producer(),
        }
    }

    /// Numbers items by their global position (order-preserving).
    fn enumerate(self) -> EnumerateIter<Self::Producer>
    where
        Self: IntoProducer,
    {
        EnumerateIter {
            base: self.into_producer(),
            offset: 0,
        }
    }

    /// Chunk-size hint; accepted and ignored (chunking is `threads × 4`).
    fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// Chunk-size hint; accepted and ignored.
    fn with_max_len(self, _len: usize) -> Self {
        self
    }

    // ---- terminals ------------------------------------------------------

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        struct ForEachSink<'a, F>(&'a F);
        impl<T, F: Fn(T) + Sync> PartSink<T> for ForEachSink<'_, F> {
            fn accept<I: Iterator<Item = T>>(&self, _part: usize, items: I) {
                for item in items {
                    (self.0)(item);
                }
            }
        }
        self.drive(default_parts(), &ForEachSink(&f));
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
        Self::Item: Send,
    {
        let parts = default_parts();
        struct CollectSink<T> {
            slots: PartSlots<Vec<T>>,
        }
        impl<T: Send> PartSink<T> for CollectSink<T> {
            fn accept<I: Iterator<Item = T>>(&self, part: usize, items: I) {
                self.slots.set(part, items.collect());
            }
        }
        let sink = CollectSink {
            slots: PartSlots::new(parts),
        };
        self.drive(parts, &sink);
        sink.slots.into_ordered().flatten().collect()
    }

    /// Rayon's two-closure fold: yields one accumulator per part actually
    /// driven, in part order, as a new parallel iterator.
    fn fold<ID, B, F>(self, identity: ID, fold_op: F) -> VecIter<B>
    where
        B: Send,
        ID: Fn() -> B + Sync,
        F: Fn(B, Self::Item) -> B + Sync,
    {
        let parts = default_parts();
        struct FoldSink<'a, ID, F, B> {
            identity: &'a ID,
            fold_op: &'a F,
            slots: PartSlots<B>,
        }
        impl<T, B, ID, F> PartSink<T> for FoldSink<'_, ID, F, B>
        where
            B: Send,
            ID: Fn() -> B + Sync,
            F: Fn(B, T) -> B + Sync,
        {
            fn accept<I: Iterator<Item = T>>(&self, part: usize, items: I) {
                let acc = items.fold((self.identity)(), |acc, item| (self.fold_op)(acc, item));
                self.slots.set(part, acc);
            }
        }
        let sink = FoldSink {
            identity: &identity,
            fold_op: &fold_op,
            slots: PartSlots::new(parts),
        };
        self.drive(parts, &sink);
        VecIter {
            vec: sink.slots.into_ordered().collect(),
        }
    }

    /// Folds each part from `identity()`, then combines per-part results in
    /// part order. With one part this is exactly a sequential fold.
    fn reduce<ID, F>(self, identity: ID, reduce_op: F) -> Self::Item
    where
        Self::Item: Send,
        ID: Fn() -> Self::Item + Sync,
        F: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        self.fold(&identity, &reduce_op)
            .vec
            .into_iter()
            .reduce(&reduce_op)
            .unwrap_or_else(identity)
    }

    fn sum<S>(self) -> S
    where
        Self::Item: Send,
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = default_parts();
        struct SumSink<S> {
            slots: PartSlots<S>,
        }
        impl<T, S> PartSink<T> for SumSink<S>
        where
            S: std::iter::Sum<T> + Send,
        {
            fn accept<I: Iterator<Item = T>>(&self, part: usize, items: I) {
                self.slots.set(part, items.sum());
            }
        }
        let sink = SumSink {
            slots: PartSlots::new(parts),
        };
        self.drive(parts, &sink);
        let mut sums: Vec<S> = sink.slots.into_ordered().collect();
        if sums.len() == 1 {
            // Bit-for-bit with the sequential fallback: no extra zero term.
            sums.pop().expect("sum: single part vanished")
        } else {
            sums.into_iter().sum()
        }
    }

    fn count(self) -> usize
    where
        Self::Item: Send,
    {
        self.map(|_| 1usize).sum()
    }

    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        struct AnySink<'a, F> {
            f: &'a F,
            found: &'a AtomicBool,
        }
        impl<T, F: Fn(T) -> bool + Sync> PartSink<T> for AnySink<'_, F> {
            fn accept<I: Iterator<Item = T>>(&self, _part: usize, mut items: I) {
                // Parts that start after a hit bail out immediately.
                if self.found.load(Ordering::Relaxed) {
                    return;
                }
                if items.any(|item| (self.f)(item)) {
                    self.found.store(true, Ordering::Relaxed);
                }
            }
        }
        let found = AtomicBool::new(false);
        self.drive(
            default_parts(),
            &AnySink {
                f: &f,
                found: &found,
            },
        );
        found.into_inner()
    }

    fn all<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        !self.any(move |item| !f(item))
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord + Send,
    {
        self.fold(
            || None,
            |acc: Option<Self::Item>, item| match acc {
                Some(best) => Some(best.max(item)),
                None => Some(item),
            },
        )
        .vec
        .into_iter()
        .flatten()
        .max()
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord + Send,
    {
        self.fold(
            || None,
            |acc: Option<Self::Item>, item| match acc {
                Some(best) => Some(best.min(item)),
                None => Some(item),
            },
        )
        .vec
        .into_iter()
        .flatten()
        .min()
    }
}

/// Marker for exactly-sized, order-preserving pipelines (rayon's indexed
/// iterators). Sources and their `map`/`copied`/`cloned`/`zip`/`enumerate`
/// combinations qualify.
pub trait IndexedParallelIterator: ParallelIterator {}

/// Pipelines that can be turned back into a splittable [`Producer`];
/// required by `zip` and `enumerate`.
#[doc(hidden)]
pub trait IntoProducer: ParallelIterator {
    type Producer: Producer<Item = Self::Item>;
    fn into_producer(self) -> Self::Producer;
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }

        impl Producer for RangeIter<$t> {
            type Item = $t;
            type IntoIter = Range<$t>;
            fn len(&self) -> usize {
                if self.range.start >= self.range.end {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }
            fn into_iter(self) -> Range<$t> {
                self.range
            }
        }

        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn drive<S: PartSink<$t>>(self, parts: usize, sink: &S) {
                drive_producer(self, parts, sink);
            }
        }

        impl IndexedParallelIterator for RangeIter<$t> {}

        impl IntoProducer for RangeIter<$t> {
            type Producer = Self;
            fn into_producer(self) -> Self {
                self
            }
        }

        impl IntoParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Iter = Self;
            fn into_par_iter(self) -> Self {
                self
            }
        }
    )*};
}

impl_range_source!(u16, u32, u64, usize, i32, i64);

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceIter<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at(index);
        (SliceIter { slice: head }, SliceIter { slice: tail })
    }
    fn into_iter(self) -> std::slice::Iter<'a, T> {
        self.slice.iter()
    }
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn drive<S: PartSink<&'a T>>(self, parts: usize, sink: &S) {
        drive_producer(self, parts, sink);
    }
}

impl<T: Sync> IndexedParallelIterator for SliceIter<'_, T> {}

impl<'a, T: Sync> IntoProducer for SliceIter<'a, T> {
    type Producer = Self;
    fn into_producer(self) -> Self {
        self
    }
}

impl<'a, T: Sync> IntoParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: head }, SliceIterMut { slice: tail })
    }
    fn into_iter(self) -> std::slice::IterMut<'a, T> {
        self.slice.iter_mut()
    }
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn drive<S: PartSink<&'a mut T>>(self, parts: usize, sink: &S) {
        drive_producer(self, parts, sink);
    }
}

impl<T: Send> IndexedParallelIterator for SliceIterMut<'_, T> {}

impl<'a, T: Send> IntoProducer for SliceIterMut<'a, T> {
    type Producer = Self;
    fn into_producer(self) -> Self {
        self
    }
}

impl<'a, T: Send> IntoParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

/// Parallel iterator that owns a `Vec` (`Vec::into_par_iter`, `fold`
/// output). Parts are materialized by value before being spawned.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn drive<S: PartSink<T>>(self, parts: usize, sink: &S) {
        let len = self.vec.len();
        let parts = parts.clamp(1, len.max(1));
        if parts == 1 {
            sink.accept(0, self.vec.into_iter());
            return;
        }
        let mut items = self.vec.into_iter();
        mixen_pool::scope(|s| {
            let mut offset = 0usize;
            for part in 0..parts {
                let end = len * (part + 1) / parts;
                let chunk: Vec<T> = items.by_ref().take(end - offset).collect();
                offset = end;
                s.spawn(move || sink.accept(part, chunk.into_iter()));
            }
        });
    }
}

impl<T: Send> IndexedParallelIterator for VecIter<T> {}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

impl<T: Send> IntoParallelIterator for VecIter<T> {
    type Item = T;
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

// ---------------------------------------------------------------------------
// Zip / Enumerate (producer-based, order-preserving)
// ---------------------------------------------------------------------------

/// Lock-step pairing of two producers (`a.zip(b)`), splittable on both
/// sides at once.
pub struct ZipIter<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipIter<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a_head, a_tail) = self.a.split_at(index);
        let (b_head, b_tail) = self.b.split_at(index);
        (
            ZipIter {
                a: a_head,
                b: b_head,
            },
            ZipIter {
                a: a_tail,
                b: b_tail,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        Producer::into_iter(self.a).zip(Producer::into_iter(self.b))
    }
}

impl<A: Producer, B: Producer> ParallelIterator for ZipIter<A, B> {
    type Item = (A::Item, B::Item);
    fn drive<S: PartSink<Self::Item>>(self, parts: usize, sink: &S) {
        drive_producer(self, parts, sink);
    }
}

impl<A: Producer, B: Producer> IndexedParallelIterator for ZipIter<A, B> {}

impl<A: Producer, B: Producer> IntoProducer for ZipIter<A, B> {
    type Producer = Self;
    fn into_producer(self) -> Self {
        self
    }
}

impl<A: Producer, B: Producer> IntoParallelIterator for ZipIter<A, B> {
    type Item = (A::Item, B::Item);
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

/// Globally-numbered items (`.enumerate()`), offset-aware under splits.
pub struct EnumerateIter<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateIter<P> {
    type Item = (usize, P::Item);
    type IntoIter = std::iter::Zip<Range<usize>, P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            EnumerateIter {
                base: head,
                offset: self.offset,
            },
            EnumerateIter {
                base: tail,
                offset: self.offset + index,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        let positions = self.offset..self.offset + self.base.len();
        positions.zip(Producer::into_iter(self.base))
    }
}

impl<P: Producer> ParallelIterator for EnumerateIter<P> {
    type Item = (usize, P::Item);
    fn drive<S: PartSink<Self::Item>>(self, parts: usize, sink: &S) {
        drive_producer(self, parts, sink);
    }
}

impl<P: Producer> IndexedParallelIterator for EnumerateIter<P> {}

impl<P: Producer> IntoProducer for EnumerateIter<P> {
    type Producer = Self;
    fn into_producer(self) -> Self {
        self
    }
}

impl<P: Producer> IntoParallelIterator for EnumerateIter<P> {
    type Item = (usize, P::Item);
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

// ---------------------------------------------------------------------------
// Adapters (fused into the part's task via sink wrappers)
// ---------------------------------------------------------------------------

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn drive<S: PartSink<R>>(self, parts: usize, sink: &S) {
        struct MapSink<'a, F, S> {
            f: &'a F,
            inner: &'a S,
        }
        impl<T, R, F, S> PartSink<T> for MapSink<'_, F, S>
        where
            F: Fn(T) -> R + Sync,
            S: PartSink<R>,
        {
            fn accept<I: Iterator<Item = T>>(&self, part: usize, items: I) {
                self.inner.accept(part, items.map(self.f));
            }
        }
        let Map { base, f } = self;
        base.drive(parts, &MapSink { f: &f, inner: sink });
    }
}

impl<B, F, R> IndexedParallelIterator for Map<B, F>
where
    B: IndexedParallelIterator,
    F: Fn(B::Item) -> R + Sync,
{
}

/// `filter` adapter.
pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Sync,
{
    type Item = B::Item;
    fn drive<S: PartSink<B::Item>>(self, parts: usize, sink: &S) {
        struct FilterSink<'a, F, S> {
            f: &'a F,
            inner: &'a S,
        }
        impl<T, F, S> PartSink<T> for FilterSink<'_, F, S>
        where
            F: Fn(&T) -> bool + Sync,
            S: PartSink<T>,
        {
            fn accept<I: Iterator<Item = T>>(&self, part: usize, items: I) {
                self.inner.accept(part, items.filter(|item| (self.f)(item)));
            }
        }
        let Filter { base, f } = self;
        base.drive(parts, &FilterSink { f: &f, inner: sink });
    }
}

/// `filter_map` adapter.
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> Option<R> + Sync,
{
    type Item = R;
    fn drive<S: PartSink<R>>(self, parts: usize, sink: &S) {
        struct FilterMapSink<'a, F, S> {
            f: &'a F,
            inner: &'a S,
        }
        impl<T, R, F, S> PartSink<T> for FilterMapSink<'_, F, S>
        where
            F: Fn(T) -> Option<R> + Sync,
            S: PartSink<R>,
        {
            fn accept<I: Iterator<Item = T>>(&self, part: usize, items: I) {
                self.inner.accept(part, items.filter_map(self.f));
            }
        }
        let FilterMap { base, f } = self;
        base.drive(parts, &FilterMapSink { f: &f, inner: sink });
    }
}

/// `flat_map_iter` / `flat_map` adapter.
pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

impl<B, F, U> ParallelIterator for FlatMapIter<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> U + Sync,
    U: IntoIterator,
{
    type Item = U::Item;
    fn drive<S: PartSink<U::Item>>(self, parts: usize, sink: &S) {
        struct FlatSink<'a, F, S> {
            f: &'a F,
            inner: &'a S,
        }
        impl<T, U, F, S> PartSink<T> for FlatSink<'_, F, S>
        where
            F: Fn(T) -> U + Sync,
            U: IntoIterator,
            S: PartSink<U::Item>,
        {
            fn accept<I: Iterator<Item = T>>(&self, part: usize, items: I) {
                self.inner.accept(part, items.flat_map(self.f));
            }
        }
        let FlatMapIter { base, f } = self;
        base.drive(parts, &FlatSink { f: &f, inner: sink });
    }
}

/// `copied` adapter.
pub struct Copied<B> {
    base: B,
}

impl<'a, B, T> ParallelIterator for Copied<B>
where
    B: ParallelIterator<Item = &'a T>,
    T: Copy + 'a,
{
    type Item = T;
    fn drive<S: PartSink<T>>(self, parts: usize, sink: &S) {
        struct CopiedSink<'s, S> {
            inner: &'s S,
        }
        impl<'a, T, S> PartSink<&'a T> for CopiedSink<'_, S>
        where
            T: Copy + 'a,
            S: PartSink<T>,
        {
            fn accept<I: Iterator<Item = &'a T>>(&self, part: usize, items: I) {
                self.inner.accept(part, items.copied());
            }
        }
        self.base.drive(parts, &CopiedSink { inner: sink });
    }
}

impl<'a, B, T> IndexedParallelIterator for Copied<B>
where
    B: IndexedParallelIterator<Item = &'a T>,
    T: Copy + 'a,
{
}

/// `cloned` adapter.
pub struct Cloned<B> {
    base: B,
}

impl<'a, B, T> ParallelIterator for Cloned<B>
where
    B: ParallelIterator<Item = &'a T>,
    T: Clone + 'a,
{
    type Item = T;
    fn drive<S: PartSink<T>>(self, parts: usize, sink: &S) {
        struct ClonedSink<'s, S> {
            inner: &'s S,
        }
        impl<'a, T, S> PartSink<&'a T> for ClonedSink<'_, S>
        where
            T: Clone + 'a,
            S: PartSink<T>,
        {
            fn accept<I: Iterator<Item = &'a T>>(&self, part: usize, items: I) {
                self.inner.accept(part, items.cloned());
            }
        }
        self.base.drive(parts, &ClonedSink { inner: sink });
    }
}

impl<'a, B, T> IndexedParallelIterator for Cloned<B>
where
    B: IndexedParallelIterator<Item = &'a T>,
    T: Clone + 'a,
{
}

// ---------------------------------------------------------------------------
// Slice sorting
// ---------------------------------------------------------------------------

/// Below this length (or past the quicksort depth limit) sorting falls
/// back to `slice::sort_unstable_by` on the current thread.
const SEQ_SORT_CUTOFF: usize = 4096;

/// Mirror of `rayon::slice::ParallelSliceMut` (`par_sort_*`).
pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    /// Parallel unstable sort (quicksort recursing via `mixen_pool::join`,
    /// sequential below `SEQ_SORT_CUTOFF` or on a single-lane pool).
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.par_sort_unstable_by(|a, b| a.cmp(b));
    }

    /// Comparator variant of [`par_sort_unstable`](Self::par_sort_unstable).
    /// The recursion structure depends only on the data, so the result is
    /// identical for every multi-threaded pool size.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> CmpOrdering + Sync,
    {
        let slice = self.as_parallel_slice_mut();
        if mixen_pool::current_num_threads() <= 1 {
            slice.sort_unstable_by(|a, b| compare(a, b));
            return;
        }
        let depth = 2 * usize::BITS.saturating_sub(slice.len().leading_zeros()) + 8;
        par_quicksort(slice, &compare, depth);
    }

    /// Stable sort; runs sequentially (no call site needs it parallel).
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.as_parallel_slice_mut().sort();
    }

    /// Stable comparator sort; runs sequentially.
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> CmpOrdering,
    {
        self.as_parallel_slice_mut().sort_by(compare);
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

fn par_quicksort<T, F>(v: &mut [T], compare: &F, depth: u32)
where
    T: Send,
    F: Fn(&T, &T) -> CmpOrdering + Sync,
{
    if v.len() <= SEQ_SORT_CUTOFF || depth == 0 {
        v.sort_unstable_by(|a, b| compare(a, b));
        return;
    }
    let pivot_pos = partition(v, compare);
    let (lo, rest) = v.split_at_mut(pivot_pos);
    let hi = &mut rest[1..];
    mixen_pool::join(
        || par_quicksort(lo, compare, depth - 1),
        || par_quicksort(hi, compare, depth - 1),
    );
}

/// Median-of-three Hoare partition: returns the pivot's final index; every
/// element left of it compares `<=` pivot and everything right `>=` pivot.
fn partition<T, F>(v: &mut [T], compare: &F) -> usize
where
    F: Fn(&T, &T) -> CmpOrdering,
{
    let len = v.len();
    let mid = len / 2;
    if compare(&v[mid], &v[0]) == CmpOrdering::Less {
        v.swap(mid, 0);
    }
    if compare(&v[len - 1], &v[0]) == CmpOrdering::Less {
        v.swap(len - 1, 0);
    }
    if compare(&v[len - 1], &v[mid]) == CmpOrdering::Less {
        v.swap(len - 1, mid);
    }
    v.swap(0, mid); // median-of-three pivot parked at index 0
    let mut i = 1;
    let mut j = len - 1;
    loop {
        while i <= j && compare(&v[i], &v[0]) == CmpOrdering::Less {
            i += 1;
        }
        while i <= j && compare(&v[j], &v[0]) == CmpOrdering::Greater {
            j -= 1;
        }
        if i >= j {
            break;
        }
        v.swap(i, j);
        i += 1;
        j -= 1;
    }
    v.swap(0, j);
    j
}

// ---------------------------------------------------------------------------
// Modules mirroring rayon's layout
// ---------------------------------------------------------------------------

/// Iterator traits and adapters (mirrors `rayon::iter`).
pub mod iter {
    pub use crate::{
        Cloned, Copied, EnumerateIter, Filter, FilterMap, FlatMapIter, IndexedParallelIterator,
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Map,
        ParallelIterator, RangeIter, SliceIter, SliceIterMut, VecIter, ZipIter,
    };
}

/// Slice extensions (mirrors `rayon::slice`).
pub mod slice {
    pub use crate::ParallelSliceMut;
}

/// The traits a call site needs in scope (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_roundtrip() {
        let squares: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 100);
        assert_eq!(squares[9], 81);
        assert_eq!(squares[99], 99 * 99);
    }

    #[test]
    fn fold_then_reduce_matches_histogram() {
        let values: Vec<usize> = (0..1000).map(|i| i % 7).collect();
        let histogram = values
            .par_iter()
            .fold(
                || vec![0usize; 7],
                |mut acc, &v| {
                    acc[v] += 1;
                    acc
                },
            )
            .reduce(
                || vec![0usize; 7],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        let expected: Vec<usize> = (0..7)
            .map(|r| values.iter().filter(|&&v| v == r).count())
            .collect();
        assert_eq!(histogram, expected);
    }

    #[test]
    fn zip_and_mut_iteration() {
        let src: Vec<u32> = (0..512).collect();
        let mut dst = vec![0u32; 512];
        dst.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(d, &s)| *d = s * 2);
        assert!(dst.iter().enumerate().all(|(i, &v)| v == 2 * i as u32));
    }

    #[test]
    fn par_sorts() {
        let mut a: Vec<i64> = (0..3000).map(|i| (i * 7919) % 1000 - 500).collect();
        let mut b = a.clone();
        a.sort_unstable();
        b.par_sort_unstable();
        assert_eq!(a, b);

        let mut c: Vec<i64> = (0..3000).map(|i| (i * 104_729) % 500).collect();
        let mut d = c.clone();
        c.sort();
        d.par_sort();
        assert_eq!(c, d);
    }

    #[test]
    fn parallel_collect_preserves_source_order() {
        mixen_pool::with_threads(4, || {
            let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i).collect();
            assert_eq!(out, (0..10_000).collect::<Vec<_>>());
        });
    }

    #[test]
    fn parallel_flat_map_iter_preserves_order() {
        mixen_pool::with_threads(4, || {
            let out: Vec<usize> = (0..1000usize)
                .into_par_iter()
                .flat_map_iter(|i| (0..i % 3).map(move |k| i * 10 + k))
                .collect();
            let expected: Vec<usize> = (0..1000)
                .flat_map(|i| (0..i % 3).map(move |k| i * 10 + k))
                .collect();
            assert_eq!(out, expected);
        });
    }

    #[test]
    fn parallel_enumerate_matches_positions() {
        mixen_pool::with_threads(3, || {
            let data: Vec<u32> = (100..1100).collect();
            let ok = data
                .par_iter()
                .enumerate()
                .all(|(i, &v)| v == 100 + i as u32);
            assert!(ok);
        });
    }

    #[test]
    fn parallel_for_each_visits_everything_once() {
        mixen_pool::with_threads(4, || {
            let hits: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
            (0..5000usize).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn parallel_sum_count_minmax() {
        mixen_pool::with_threads(4, || {
            let total: u64 = (0u64..100_000).into_par_iter().sum();
            assert_eq!(total, 100_000 * 99_999 / 2);
            let evens = (0u64..100_000)
                .into_par_iter()
                .filter(|v| v % 2 == 0)
                .count();
            assert_eq!(evens, 50_000);
            assert_eq!((5u32..50).into_par_iter().max(), Some(49));
            assert_eq!((5u32..50).into_par_iter().min(), Some(5));
            assert_eq!((5u32..5).into_par_iter().max(), None);
        });
    }

    #[test]
    fn parallel_unstable_sort_sorts_large_inputs() {
        mixen_pool::with_threads(4, || {
            let mut v: Vec<u64> = (0..60_000u64)
                .map(|i| (i * 2_654_435_761) % 100_000)
                .collect();
            let mut expected = v.clone();
            expected.sort_unstable();
            v.par_sort_unstable();
            assert_eq!(v, expected);

            // Heavily duplicated keys exercise the equal-element path.
            let mut dups: Vec<u8> = (0..50_000).map(|i| (i % 3) as u8).collect();
            let mut dups_expected = dups.clone();
            dups_expected.sort_unstable();
            dups.par_sort_unstable();
            assert_eq!(dups, dups_expected);
        });
    }

    #[test]
    fn single_thread_matches_multi_thread_for_integer_pipelines() {
        let seq: Vec<usize> = mixen_pool::with_threads(1, || {
            (0..4096usize)
                .into_par_iter()
                .filter(|i| i % 5 != 0)
                .map(|i| i * 3)
                .collect()
        });
        let par: Vec<usize> = mixen_pool::with_threads(4, || {
            (0..4096usize)
                .into_par_iter()
                .filter(|i| i % 5 != 0)
                .map(|i| i * 3)
                .collect()
        });
        assert_eq!(seq, par);
    }
}
