//! Deterministic shim of the `rand` 0.8 API subset this workspace uses.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! [`rngs::StdRng`] here is a splitmix64 generator — statistically fine for graph
//! synthesis and shuffling, and fully reproducible from `seed_from_u64`.
//! Note the streams differ from upstream `rand`'s ChaCha-based `StdRng`,
//! so generated graphs differ in exact edges (but not in distributional
//! shape) from builds against the real crate.

/// Core source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Mirror of `rand::SeedableRng` (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
    pub trait Standard: Sized {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for usize {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for f64 {
        /// Uniform in [0, 1) with 53 bits of precision.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        /// Uniform in [0, 1) with 24 bits of precision.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Ranges samplable by `rng.gen_range(range)`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot sample empty range {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    // Multiply-shift bounded sampling; bias is < span / 2^64,
                    // negligible for the graph-synthesis ranges used here.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + hi as $t
                }
            }
        )*};
    }
    impl_sample_range_int!(u16, u32, u64, usize);

    impl SampleRange<f64> for std::ops::Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            self.start + f64::sample_standard(rng) * (self.end - self.start)
        }
    }
}

/// Mirror of `rand::Rng`, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: distributions::SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Mirror of `rand::seq::SliceRandom` (only `shuffle`).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u32..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in 0..10 reachable");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
