//! Deterministic shim of the `proptest` API subset this workspace uses.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This shim keeps the `proptest! { #[test] fn f(x in strat) { .. } }`
//! surface, `Strategy` with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, and `collection::vec`. Inputs are sampled uniformly from a
//! per-test deterministic RNG; there is no shrinking — a failing case
//! panics with the ordinary `assert!` message, which together with the
//! fixed seed is reproducible.

pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config` / `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic splitmix64 source feeding all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1) with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in [0, bound) via multiply-shift.
        pub fn bounded(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample from an empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Stand-in for `proptest::strategy::Strategy`: a recipe producing
    /// values of `Self::Value` from the test RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_for_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.bounded(span) as $t
                }
            }
        )*};
    }
    impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_strategy_for_tuple!(A.0);
    impl_strategy_for_tuple!(A.0, B.1);
    impl_strategy_for_tuple!(A.0, B.1, C.2);
    impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
    impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
    impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start
                + if span == 0 {
                    0
                } else {
                    rng.bounded(span) as usize
                };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                // Per-test seed from the test name (FNV-1a) so different
                // tests see different input streams.
                let mut __seed = 0xcbf2_9ce4_8422_2325u64;
                for __b in stringify!($name).bytes() {
                    __seed ^= __b as u64;
                    __seed = __seed.wrapping_mul(0x1000_0000_01b3);
                }
                let mut __rng = $crate::test_runner::TestRng::deterministic(__seed);
                for __case in 0..__config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
        (2usize..10).prop_flat_map(|n| crate::collection::vec((0..n as u32, 0..n as u32), 0..20))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Range strategies stay in bounds; doc comments pass through.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&z), "z = {}", z);
        }

        #[test]
        fn flat_mapped_vec_respects_inner_bound(pairs in arb_pairs()) {
            prop_assert!(pairs.len() < 20);
            for (s, d) in pairs {
                prop_assert!(s < 10 && d < 10);
            }
        }

        #[test]
        fn trailing_comma_and_tuple_map(
            v in (1u32..5, 1u32..5).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((2..=8).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 1..50);
        let mut r1 = crate::test_runner::TestRng::deterministic(1);
        let mut r2 = crate::test_runner::TestRng::deterministic(1);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
