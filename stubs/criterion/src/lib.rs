//! Minimal shim of the `criterion` API subset this workspace's benches use.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This shim keeps bench binaries compiling and gives them useful behavior:
//! each `b.iter(..)` runs the closure for a short, bounded number of
//! iterations and prints a mean wall-clock time per iteration. There is no
//! statistical analysis, warm-up discarding, or HTML report — use the
//! `crates/bench/src/bin/*` binaries for real measurements.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<D: std::fmt::Display>(function: &str, parameter: D) -> Self {
        BenchmarkId(format!("{}/{}", function, parameter))
    }

    pub fn from_parameter<D: std::fmt::Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, budget: Duration, f: &mut F) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    let start = Instant::now();
    for _ in 0..sample_size {
        f(&mut bencher);
        total_iters += bencher.iters;
        total_time += bencher.elapsed;
        if start.elapsed() > budget {
            break;
        }
    }
    let per_iter = if total_iters > 0 {
        total_time.as_secs_f64() / total_iters as f64
    } else {
        0.0
    };
    println!("bench {:<40} {:>12.3} µs/iter", id, per_iter * 1e6);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls >= 3);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| hits += x)
        });
        group.finish();
        assert!(hits > 0);
    }
}
