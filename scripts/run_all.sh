#!/usr/bin/env bash
# Regenerates every table/figure of EXPERIMENTS.md into results/.
# Usage: scripts/run_all.sh [scale] [iters] [--threads N]
#   defaults: small 10, threads from MIXEN_THREADS / host parallelism.
# --threads pins the worker-lane count of every binary; the scaling bin
# sweeps its own 1/2/4/8 lane counts regardless.
#
# Robustness contract: every result file is written to a .partial path and
# moved into place only after its producer exits cleanly, so an interrupted
# or failing run never leaves a half-written file that looks like a result.
# Leftover .partial files are removed on exit.
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="small"
ITERS="10"
THREADS=()
POS=0
while [ $# -gt 0 ]; do
  case "$1" in
    --threads)
      [ $# -ge 2 ] || { echo "error: --threads needs a value" >&2; exit 2; }
      THREADS=(--threads "$2"); shift 2 ;;
    *)
      case $POS in
        0) SCALE="$1" ;;
        1) ITERS="$1" ;;
        *) echo "error: unexpected argument '$1'" >&2; exit 2 ;;
      esac
      POS=$((POS + 1)); shift ;;
  esac
done
cargo build --release -p mixen-bench
mkdir -p results
trap 'rm -f results/*.partial' EXIT

# finish FILE...  — promotes .partial outputs after a clean producer exit.
finish() {
  local f
  for f in "$@"; do
    mv "${f}.partial" "$f"
  done
}

for b in table1 table2 table4 fig4 fig5 fig6 fig7 model_check ablation adaptive; do
  echo "=== $b ($SCALE) ==="
  txt="results/${b}_${SCALE}.txt"
  # ${THREADS[@]+...} keeps the empty-array expansion safe under `set -u`
  # on bash < 4.4.
  ./target/release/"$b" --scale "$SCALE" --iters "$ITERS" ${THREADS[@]+"${THREADS[@]}"} \
    | tee "${txt}.partial"
  finish "$txt"
done
# phases, table3 and scaling also emit machine-readable JSON sidecars.
for b in phases table3; do
  echo "=== $b ($SCALE) ==="
  txt="results/${b}_${SCALE}.txt"
  json="results/${b}_${SCALE}.json"
  ./target/release/"$b" --scale "$SCALE" --iters "$ITERS" ${THREADS[@]+"${THREADS[@]}"} \
    --json "${json}.partial" | tee "${txt}.partial"
  finish "$json" "$txt"
done
# The scaling sweep manages its own lane counts (1/2/4/8 via pool overrides),
# so it deliberately does not receive --threads.
echo "=== scaling ($SCALE) ==="
txt="results/scaling_${SCALE}.txt"
json="results/scaling_${SCALE}.json"
./target/release/scaling --scale "$SCALE" --iters "$ITERS" \
  --json "${json}.partial" | tee "${txt}.partial"
finish "$json" "$txt"
# Kernel microbenchmarks: the regression-baseline protocol pins 4 lanes
# (EXPERIMENTS.md "Kernel microbenchmarks"), so --threads is fixed here too.
echo "=== kernels ($SCALE) ==="
txt="results/kernels_${SCALE}.txt"
json="results/kernels_${SCALE}.json"
./target/release/kernels --scale "$SCALE" --iters "$ITERS" --threads 4 \
  --json "${json}.partial" | tee "${txt}.partial"
finish "$json" "$txt"
# Reordering shoot-out: every relabel policy over the uniform/skewed/
# web-like profiles, with simulated cache behaviour and measured PageRank
# time per policy (EXPERIMENTS.md "Reordering shoot-out"). Same pinned
# 4-lane protocol as the kernels baseline.
echo "=== reorder ($SCALE) ==="
txt="results/reorder_${SCALE}.txt"
json="results/reorder_${SCALE}.json"
./target/release/reorder --scale "$SCALE" --iters "$ITERS" --threads 4 \
  --json "${json}.partial" | tee "${txt}.partial"
finish "$json" "$txt"
# Serving-layer load sweep: closed-loop clients at 1/2/4/8 concurrency
# against an in-process mixen-serve instance (EXPERIMENTS.md "Serving
# layer"). The server manages its own request workers, so --threads only
# pins the resident ranking engine.
echo "=== serve_bench ($SCALE) ==="
txt="results/serve_${SCALE}.txt"
json="results/serve_${SCALE}.json"
./target/release/serve_bench --scale "$SCALE" --iters "$ITERS" --datasets wiki \
  ${THREADS[@]+"${THREADS[@]}"} --json "${json}.partial" | tee "${txt}.partial"
finish "$json" "$txt"
echo "all results written to results/"
