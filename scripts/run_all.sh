#!/usr/bin/env bash
# Regenerates every table/figure of EXPERIMENTS.md into results/.
# Usage: scripts/run_all.sh [scale] [iters]   (defaults: small 10)
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-small}"
ITERS="${2:-10}"
cargo build --release -p mixen-bench
mkdir -p results
for b in table1 table2 table4 fig4 fig5 fig6 fig7 model_check ablation adaptive; do
  echo "=== $b ($SCALE) ==="
  ./target/release/$b --scale "$SCALE" --iters "$ITERS" | tee "results/${b}_${SCALE}.txt"
done
# phases and table3 also emit machine-readable JSON sidecars.
for b in phases table3; do
  echo "=== $b ($SCALE) ==="
  ./target/release/$b --scale "$SCALE" --iters "$ITERS" \
    --json "results/${b}_${SCALE}.json" | tee "results/${b}_${SCALE}.txt"
done
echo "all results written to results/"
